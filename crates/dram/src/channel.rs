//! Per-channel memory controller: FR-FCFS scheduling, refresh, low-power
//! governor, and timing enforcement.

use crate::bank::BankState;
use crate::command::{AccessKind, DramCommand, PendingRequest, RequestPhase};
use crate::policy::LowPowerPolicy;
use crate::rank::{RankCtl, RankPowerState};
use crate::validate::CommandRecord;
use gd_types::config::{DramConfig, DramTiming};
use gd_types::stats::Summary;

/// Event/command counters local to one channel.
#[derive(Debug, Clone, Default)]
pub(crate) struct ChannelCounters {
    pub reads: u64,
    pub writes: u64,
    pub activates: u64,
    pub precharges: u64,
    pub refreshes: u64,
    pub row_hits: u64,
    pub row_misses: u64,
    pub row_conflicts: u64,
    pub read_latency: Summary,
}

/// One channel's controller state.
#[derive(Debug)]
pub(crate) struct ChannelCtrl {
    timing: DramTiming,
    bank_groups: usize,
    banks_per_group: usize,
    banks_per_rank: usize,
    rows_per_subarray: u32,
    ranks: Vec<RankCtl>,
    banks: Vec<BankState>,
    queue: Vec<PendingRequest>,
    /// Queued-request count per rank; keeps `queue_has_rank` O(1) (it is
    /// consulted per rank by the governor and `next_event` on every poll).
    queued_per_rank: Vec<u32>,
    /// Data bus busy until this cycle.
    bus_free_at: u64,
    /// Channel-wide earliest next column command (tCCD_S).
    next_col_any: u64,
    /// Per (rank, bank group) earliest next column command (tCCD_L).
    next_col_bg: Vec<u64>,
    policy: LowPowerPolicy,
    pub counters: ChannelCounters,
    /// This channel's index (for command logging).
    channel_index: u32,
    /// Optional command log for independent timing validation.
    log: Option<Vec<CommandRecord>>,
}

impl ChannelCtrl {
    #[cfg(test)]
    pub fn new(cfg: &DramConfig, policy: LowPowerPolicy) -> Self {
        Self::with_index(cfg, policy, 0)
    }

    pub fn with_index(cfg: &DramConfig, policy: LowPowerPolicy, channel_index: u32) -> Self {
        let org = cfg.org;
        let ranks_n = org.ranks_per_channel as usize;
        let banks_per_rank = org.banks_per_rank() as usize;
        let timing = cfg.timing;
        // Stagger refresh across ranks so they do not refresh in lock-step.
        let ranks = (0..ranks_n)
            .map(|r| {
                let offset = timing.t_refi * (r as u64 + 1) / ranks_n as u64;
                RankCtl::new(org.bank_groups, offset)
            })
            .collect();
        ChannelCtrl {
            timing,
            bank_groups: org.bank_groups as usize,
            banks_per_group: org.banks_per_group as usize,
            banks_per_rank,
            rows_per_subarray: org.rows_per_subarray,
            ranks,
            banks: vec![BankState::default(); ranks_n * banks_per_rank],
            queue: Vec::new(),
            queued_per_rank: vec![0; ranks_n],
            bus_free_at: 0,
            next_col_any: 0,
            next_col_bg: vec![0; ranks_n * org.bank_groups as usize],
            policy,
            counters: ChannelCounters::default(),
            channel_index,
            log: None,
        }
    }

    /// Enables command logging (for [`crate::validate::TimingChecker`]).
    pub fn enable_log(&mut self) {
        self.log = Some(Vec::new());
    }

    /// Takes the accumulated command log.
    pub fn take_log(&mut self) -> Vec<CommandRecord> {
        self.log.take().unwrap_or_default()
    }

    fn record(
        &mut self,
        cycle: u64,
        rank: u32,
        bank: u32,
        bank_group: u32,
        row: u32,
        command: DramCommand,
    ) {
        if let Some(log) = &mut self.log {
            log.push(CommandRecord {
                cycle,
                channel: self.channel_index,
                rank,
                bank,
                bank_group,
                row,
                command,
            });
        }
    }

    /// Logs the MRS write that programs a sub-array group's deep power-down
    /// bit (row = group index, bank = the bit value).
    pub fn record_mrs(&mut self, cycle: u64, group: u32, down: bool) {
        if let Some(log) = &mut self.log {
            log.push(CommandRecord {
                cycle,
                channel: self.channel_index,
                rank: 0,
                bank: u32::from(down),
                bank_group: 0,
                row: group,
                command: DramCommand::ModeRegisterSet,
            });
        }
    }

    fn bank_idx(&self, rank: usize, bg: usize, bank: usize) -> usize {
        rank * self.banks_per_rank + bg * self.banks_per_group + bank
    }

    fn col_bg_idx(&self, rank: usize, bg: usize) -> usize {
        rank * self.bank_groups + bg
    }

    /// Adds a request to the scheduling queue.
    pub fn enqueue(&mut self, mut pending: PendingRequest, now: u64) {
        let rank = pending.coord.rank.index();
        self.ranks[rank].idle_since = now;
        self.queued_per_rank[rank] += 1;
        pending.enqueued_at = now;
        pending.phase = RequestPhase::NeedsActivate;
        self.queue.push(pending);
    }

    /// True while requests remain queued.
    pub fn busy(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Current queue depth (exported as a telemetry gauge).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn queue_has_rank(&self, rank: usize) -> bool {
        self.queued_per_rank[rank] > 0
    }

    fn refresh_due(&self, rank: usize, now: u64) -> bool {
        let r = &self.ranks[rank];
        r.power != RankPowerState::SelfRefresh && r.wake_at.is_none() && now >= r.next_refresh
    }

    /// Attempts to issue one command at cycle `now`. Returns `true` if a
    /// command (or power-state transition) was issued.
    pub fn try_issue(&mut self, now: u64) -> bool {
        self.complete_wakeups(now);
        self.advance_self_refresh_counters(now);
        if self.service_refresh(now) {
            return true;
        }
        if self.issue_row_hit(now) {
            return true;
        }
        if self.issue_oldest(now) {
            return true;
        }
        self.run_governor(now)
    }

    fn complete_wakeups(&mut self, now: u64) {
        for rank in &mut self.ranks {
            if let Some(w) = rank.wake_at {
                if now >= w {
                    if rank.power == RankPowerState::SelfRefresh {
                        // Self-refresh exit performs a refresh internally.
                        rank.next_refresh = now + self.timing.t_refi;
                    }
                    rank.set_power(now, RankPowerState::PrechargeStandby);
                    rank.wake_at = None;
                    // Note: waking does not reset idle_since — idleness
                    // means "no demand traffic", so refresh-driven wake-ups
                    // must not postpone self-refresh entry.
                }
            }
        }
    }

    fn advance_self_refresh_counters(&mut self, now: u64) {
        for rank in &mut self.ranks {
            if rank.power == RankPowerState::SelfRefresh && rank.next_refresh <= now {
                let behind = now - rank.next_refresh;
                let steps = behind / self.timing.t_refi + 1;
                rank.next_refresh += steps * self.timing.t_refi;
            }
        }
    }

    /// Refresh has priority: wake power-down ranks whose tREFI expired,
    /// drain open banks, and issue REF.
    fn service_refresh(&mut self, now: u64) -> bool {
        for ri in 0..self.ranks.len() {
            if !self.refresh_due(ri, now) {
                continue;
            }
            if self.ranks[ri].power == RankPowerState::PowerDown {
                // Must wake the rank to refresh it — but CKE must have been
                // low for at least tCKE before the exit.
                if now < self.ranks[ri].state_since + self.timing.t_cke {
                    continue;
                }
                self.ranks[ri].wake_at = Some(now + self.timing.t_xp);
                self.record(now, ri as u32, 0, 0, 0, DramCommand::PowerDownExit);
                return true;
            }
            if !self.ranks[ri].all_precharged() {
                // Close one open bank whose tRAS/tRTP/tWR window allows it.
                for bi in 0..self.banks_per_rank {
                    let idx = ri * self.banks_per_rank + bi;
                    if self.banks[idx].open_row.is_some() && now >= self.banks[idx].next_pre {
                        self.banks[idx].on_precharge(now, &self.timing);
                        self.ranks[ri].on_precharge_bank();
                        self.counters.precharges += 1;
                        self.record(
                            now,
                            ri as u32,
                            bi as u32,
                            (bi / self.banks_per_group) as u32,
                            0,
                            DramCommand::Precharge,
                        );
                        // Any queued request that had this row open must
                        // re-activate.
                        for p in &mut self.queue {
                            if p.coord.rank.index() == ri
                                && p.coord.flat_bank(self.banks_per_group as u32) == bi
                            {
                                p.phase = RequestPhase::NeedsActivate;
                            }
                        }
                        return true;
                    }
                }
                continue; // waiting on tRAS etc.
            }
            if now >= self.ranks[ri].refresh_until {
                let until = now + self.timing.t_rfc;
                let base = ri * self.banks_per_rank;
                for bank in self.banks.iter_mut().skip(base).take(self.banks_per_rank) {
                    bank.block_until(until);
                }
                let rank = &mut self.ranks[ri];
                rank.refresh_until = until;
                rank.next_refresh += self.timing.t_refi;
                self.counters.refreshes += 1;
                self.record(now, ri as u32, 0, 0, 0, DramCommand::Refresh);
                return true;
            }
        }
        false
    }

    fn full_row(&self, p: &PendingRequest) -> u32 {
        p.coord.full_row(self.rows_per_subarray)
    }

    fn rank_ready(&self, rank: usize) -> bool {
        let r = &self.ranks[rank];
        !r.power.is_low_power() && r.wake_at.is_none()
    }

    fn column_issue_time(&self, p: &PendingRequest) -> u64 {
        let ri = p.coord.rank.index();
        let bg = p.coord.bank_group.index();
        let bidx = self.bank_idx(ri, bg, p.coord.bank.index());
        let bank = &self.banks[bidx];
        let rank = &self.ranks[ri];
        let t = &self.timing;
        let col = self
            .next_col_any
            .max(self.next_col_bg[self.col_bg_idx(ri, bg)]);
        match p.req.kind {
            AccessKind::Read => col
                .max(bank.next_read)
                .max(rank.next_read)
                .max(self.bus_free_at.saturating_sub(t.cl)),
            AccessKind::Write => col
                .max(bank.next_write)
                .max(rank.next_write)
                .max(self.bus_free_at.saturating_sub(t.cwl)),
        }
    }

    fn can_issue_column(&self, p: &PendingRequest, now: u64) -> bool {
        let ri = p.coord.rank.index();
        if !self.rank_ready(ri) {
            return false;
        }
        let bidx = self.bank_idx(ri, p.coord.bank_group.index(), p.coord.bank.index());
        if self.banks[bidx].open_row != Some(self.full_row(p)) {
            return false;
        }
        now >= self.column_issue_time(p)
    }

    fn issue_column_at(&mut self, qi: usize, now: u64) {
        let p = self.queue.remove(qi);
        let ri = p.coord.rank.index();
        self.queued_per_rank[ri] -= 1;
        let bg = p.coord.bank_group.index();
        let bidx = self.bank_idx(ri, bg, p.coord.bank.index());
        let t = self.timing;
        let cbg = self.col_bg_idx(ri, bg);
        self.next_col_any = now + t.t_ccd_s;
        self.next_col_bg[cbg] = now + t.t_ccd_l;
        let flat_bank = p.coord.flat_bank(self.banks_per_group as u32);
        let cmd = match p.req.kind {
            AccessKind::Read => DramCommand::Read,
            AccessKind::Write => DramCommand::Write,
        };
        let row = self.full_row(&p);
        self.record(now, ri as u32, flat_bank as u32, bg as u32, row, cmd);
        match p.req.kind {
            AccessKind::Read => {
                self.banks[bidx].on_read(now, &t);
                let data_end = now + t.cl + t.burst_cycles();
                self.bus_free_at = data_end;
                // Read-to-write turnaround: tRTW = CL + BL/2 + 2 - CWL.
                let rtw = (t.cl + t.burst_cycles() + 2).saturating_sub(t.cwl);
                self.ranks[ri].next_write = self.ranks[ri].next_write.max(now + rtw);
                self.counters.reads += 1;
                self.counters
                    .read_latency
                    .record((data_end - p.req.arrival) as f64);
            }
            AccessKind::Write => {
                self.banks[bidx].on_write(now, &t);
                let data_end = now + t.cwl + t.burst_cycles();
                self.bus_free_at = data_end;
                // Write-to-read turnaround.
                self.ranks[ri].next_read = self.ranks[ri].next_read.max(data_end + t.t_wtr_l);
                self.counters.writes += 1;
            }
        }
        if matches!(p.phase, RequestPhase::NeedsActivate) {
            // Column issued without this request paying for an ACT: row hit.
            self.counters.row_hits += 1;
        }
        self.ranks[ri].idle_since = now;
    }

    /// FR-FCFS first pass: oldest ready row-hit column command.
    fn issue_row_hit(&mut self, now: u64) -> bool {
        for qi in 0..self.queue.len() {
            if self.can_issue_column(&self.queue[qi], now) {
                self.issue_column_at(qi, now);
                return true;
            }
        }
        false
    }

    /// FR-FCFS second pass: make progress for the oldest request that can
    /// move (wake its rank, precharge a conflicting row, or activate).
    fn issue_oldest(&mut self, now: u64) -> bool {
        for qi in 0..self.queue.len() {
            let (ri, bg, bidx, row, kind_needs_act);
            {
                let p = &self.queue[qi];
                ri = p.coord.rank.index();
                bg = p.coord.bank_group.index();
                bidx = self.bank_idx(ri, bg, p.coord.bank.index());
                row = self.full_row(p);
                kind_needs_act = matches!(p.phase, RequestPhase::NeedsActivate);
            }
            let rank_state = self.ranks[ri].power;
            if self.ranks[ri].wake_at.is_some() {
                continue; // waking up
            }
            if rank_state.is_low_power() {
                // Issue PDX / SRX — CKE must have been low for tCKE first.
                if now < self.ranks[ri].state_since + self.timing.t_cke {
                    continue;
                }
                let (latency, exit_cmd) = match rank_state {
                    RankPowerState::PowerDown => (self.timing.t_xp, DramCommand::PowerDownExit),
                    RankPowerState::SelfRefresh => (self.timing.t_xs, DramCommand::SelfRefreshExit),
                    _ => unreachable!(),
                };
                self.ranks[ri].wake_at = Some(now + latency);
                self.record(now, ri as u32, 0, 0, 0, exit_cmd);
                return true;
            }
            if self.refresh_due(ri, now) {
                continue; // refresh has priority on this rank
            }
            if !kind_needs_act {
                continue; // column handled in first pass
            }
            match self.banks[bidx].open_row {
                Some(open) if open == row => {
                    // Row became open for us (another request activated it);
                    // the column pass will issue it and, because the phase is
                    // still NeedsActivate, count it as a row hit.
                    continue;
                }
                Some(_) => {
                    // Row conflict: precharge when allowed.
                    if now >= self.banks[bidx].next_pre {
                        self.banks[bidx].on_precharge(now, &self.timing);
                        self.ranks[ri].on_precharge_bank();
                        self.counters.precharges += 1;
                        self.counters.row_conflicts += 1;
                        self.record(
                            now,
                            ri as u32,
                            (bidx - ri * self.banks_per_rank) as u32,
                            bg as u32,
                            0,
                            DramCommand::Precharge,
                        );
                        self.ranks[ri].idle_since = now;
                        return true;
                    }
                }
                None => {
                    if now >= self.banks[bidx].next_act && now >= self.ranks[ri].act_allowed_at(bg)
                    {
                        self.banks[bidx].on_activate(now, row, &self.timing);
                        self.ranks[ri].on_activate(now, bg, &self.timing);
                        if self.ranks[ri].open_banks == 1
                            && self.ranks[ri].power == RankPowerState::PrechargeStandby
                        {
                            self.ranks[ri].set_power(now, RankPowerState::ActiveStandby);
                        }
                        self.counters.activates += 1;
                        self.counters.row_misses += 1;
                        self.record(
                            now,
                            ri as u32,
                            (bidx - ri * self.banks_per_rank) as u32,
                            bg as u32,
                            row,
                            DramCommand::Activate,
                        );
                        self.queue[qi].phase = RequestPhase::NeedsColumn;
                        self.ranks[ri].idle_since = now;
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Idle-timeout governor: demote idle, fully-precharged ranks.
    fn run_governor(&mut self, now: u64) -> bool {
        for ri in 0..self.ranks.len() {
            if self.ranks[ri].wake_at.is_some()
                || !self.ranks[ri].all_precharged()
                || self.queue_has_rank(ri)
                || self.refresh_due(ri, now)
                || self.ranks[ri].refresh_until > now
            {
                continue;
            }
            // Track Active->Precharge standby transition when banks closed.
            if self.ranks[ri].power == RankPowerState::ActiveStandby {
                self.ranks[ri].set_power(now, RankPowerState::PrechargeStandby);
                continue;
            }
            let idle = now.saturating_sub(self.ranks[ri].idle_since);
            match self.ranks[ri].power {
                RankPowerState::PrechargeStandby => {
                    if let Some(srt) = self.policy.sr_timeout {
                        if idle >= srt {
                            self.ranks[ri].set_power(now, RankPowerState::SelfRefresh);
                            self.record(now, ri as u32, 0, 0, 0, DramCommand::SelfRefreshEnter);
                            return true;
                        }
                    }
                    if let Some(pdt) = self.policy.pd_timeout {
                        if idle >= pdt {
                            self.ranks[ri].set_power(now, RankPowerState::PowerDown);
                            self.record(now, ri as u32, 0, 0, 0, DramCommand::PowerDownEnter);
                            return true;
                        }
                    }
                }
                RankPowerState::PowerDown => {
                    if let Some(srt) = self.policy.sr_timeout {
                        if idle >= srt {
                            // Promote PD -> SR (PDX+SRE modelled as direct, so
                            // only the SRE is logged).
                            self.ranks[ri].set_power(now, RankPowerState::SelfRefresh);
                            self.record(now, ri as u32, 0, 0, 0, DramCommand::SelfRefreshEnter);
                            return true;
                        }
                    }
                }
                _ => {}
            }
        }
        false
    }

    /// Earliest future cycle at which this channel could do something.
    /// Returns `u64::MAX` when nothing is outstanding (other than
    /// self-refresh bookkeeping, which needs no controller action).
    pub fn next_event(&self, now: u64) -> u64 {
        let mut t = u64::MAX;
        for (ri, rank) in self.ranks.iter().enumerate() {
            if let Some(w) = rank.wake_at {
                t = t.min(w);
            }
            if rank.power != RankPowerState::SelfRefresh {
                t = t.min(rank.next_refresh.max(now + 1));
                if rank.refresh_until > now {
                    t = t.min(rank.refresh_until);
                }
            }
            // Governor deadlines.
            if rank.wake_at.is_none() && rank.all_precharged() && !self.queue_has_rank(ri) {
                let base = rank.idle_since;
                match rank.power {
                    RankPowerState::PrechargeStandby => {
                        if let Some(pdt) = self.policy.pd_timeout {
                            t = t.min((base + pdt).max(now + 1));
                        }
                        if let Some(srt) = self.policy.sr_timeout {
                            t = t.min((base + srt).max(now + 1));
                        }
                    }
                    RankPowerState::PowerDown => {
                        if let Some(srt) = self.policy.sr_timeout {
                            t = t.min((base + srt).max(now + 1));
                        }
                    }
                    _ => {}
                }
            }
        }
        for p in &self.queue {
            t = t.min(self.request_ready_estimate(p, now).max(now + 1));
        }
        t
    }

    fn request_ready_estimate(&self, p: &PendingRequest, now: u64) -> u64 {
        let ri = p.coord.rank.index();
        let rank = &self.ranks[ri];
        if let Some(w) = rank.wake_at {
            return w;
        }
        if rank.power.is_low_power() {
            return now + 1; // wake can be issued immediately
        }
        if rank.refresh_until > now {
            return rank.refresh_until;
        }
        let bidx = self.bank_idx(ri, p.coord.bank_group.index(), p.coord.bank.index());
        let bank = &self.banks[bidx];
        let row = self.full_row(p);
        match bank.open_row {
            Some(open) if open == row => self.column_issue_time(p),
            Some(_) => bank.next_pre,
            None => bank
                .next_act
                .max(rank.act_allowed_at(p.coord.bank_group.index())),
        }
    }

    /// Finalizes residency accounting.
    pub fn finish(&mut self, now: u64) {
        for rank in &mut self.ranks {
            rank.finish(now);
        }
    }

    /// Per-rank residency snapshots.
    pub fn residencies(&self) -> Vec<crate::rank::RankResidency> {
        self.ranks.iter().map(|r| r.residency).collect()
    }

    /// Total power-down and self-refresh entries across ranks.
    pub fn lp_entries(&self) -> (u64, u64) {
        let pd = self.ranks.iter().map(|r| r.pd_entries).sum();
        let sr = self.ranks.iter().map(|r| r.sr_entries).sum();
        (pd, sr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addrmap::AddressMapper;
    use crate::command::MemRequest;
    use gd_types::config::DramConfig;

    fn make(policy: LowPowerPolicy) -> (ChannelCtrl, AddressMapper) {
        let cfg = DramConfig::small_test();
        (
            ChannelCtrl::new(&cfg, policy),
            AddressMapper::new(&cfg).unwrap(),
        )
    }

    fn pend(mapper: &AddressMapper, req: MemRequest) -> PendingRequest {
        PendingRequest {
            coord: mapper.decode(req.addr).unwrap(),
            req,
            enqueued_at: req.arrival,
            phase: RequestPhase::NeedsActivate,
        }
    }

    /// Drives the channel until its queue drains, returning the end cycle.
    fn drain(ch: &mut ChannelCtrl, start: u64) -> u64 {
        let mut now = start;
        let mut guard = 0;
        while ch.busy() {
            if !ch.try_issue(now) {
                now = ch.next_event(now).max(now + 1);
            } else {
                now += 1;
            }
            guard += 1;
            assert!(guard < 1_000_000, "channel failed to drain");
        }
        now
    }

    #[test]
    fn single_read_completes_with_act_rcd_cl() {
        let (mut ch, mapper) = make(LowPowerPolicy::disabled());
        // Address 0 decodes to channel 0 in the small config.
        let req = MemRequest::read(0, 0);
        ch.enqueue(pend(&mapper, req), 0);
        drain(&mut ch, 0);
        assert_eq!(ch.counters.reads, 1);
        assert_eq!(ch.counters.activates, 1);
        let t = DramConfig::small_test().timing;
        let min_latency = (t.t_rcd + t.cl + t.burst_cycles()) as f64;
        assert!(ch.counters.read_latency.mean().unwrap() >= min_latency);
    }

    #[test]
    fn same_row_requests_hit_row_buffer() {
        let (mut ch, mapper) = make(LowPowerPolicy::disabled());
        // Two reads to the same row: flip only a column bit, which sits above
        // the channel/bank-group/bank bits in the interleaved layout.
        let layout = mapper.bit_layout();
        let stride = 1u64 << (layout.offset + layout.channel + layout.bank_group + layout.bank);
        ch.enqueue(pend(&mapper, MemRequest::read(0, 0)), 0);
        ch.enqueue(pend(&mapper, MemRequest::read(stride, 0)), 0);
        drain(&mut ch, 0);
        assert_eq!(ch.counters.reads, 2);
        assert_eq!(ch.counters.activates, 1, "second read must be a row hit");
        assert_eq!(ch.counters.row_hits, 1);
    }

    #[test]
    fn row_conflict_precharges_then_activates() {
        let (mut ch, mapper) = make(LowPowerPolicy::disabled());
        let cfg = DramConfig::small_test();
        // Same bank, different local row: flip a local-row bit. In the
        // interleaved small config the local row bits sit above
        // offset+ch+bg+bank+col bits.
        let layout = mapper.bit_layout();
        let row_shift = layout.offset
            + layout.channel
            + layout.bank_group
            + layout.bank
            + layout.column
            + layout.rank;
        let a1 = 0u64;
        let a2 = 1u64 << row_shift;
        let c1 = mapper.decode(a1).unwrap();
        let c2 = mapper.decode(a2).unwrap();
        assert_eq!(c1.channel, c2.channel);
        assert_eq!(
            (c1.bank_group, c1.bank, c1.rank),
            (c2.bank_group, c2.bank, c2.rank)
        );
        assert_ne!(
            c1.full_row(cfg.org.rows_per_subarray),
            c2.full_row(cfg.org.rows_per_subarray)
        );
        ch.enqueue(pend(&mapper, MemRequest::read(a1, 0)), 0);
        drain(&mut ch, 0);
        ch.enqueue(pend(&mapper, MemRequest::read(a2, 0)), 0);
        drain(&mut ch, 0);
        assert_eq!(ch.counters.activates, 2);
        assert_eq!(ch.counters.row_conflicts, 1);
    }

    #[test]
    fn idle_rank_enters_power_down_then_self_refresh() {
        let (mut ch, mapper) = make(LowPowerPolicy {
            pd_timeout: Some(64),
            sr_timeout: Some(1000),
        });
        ch.enqueue(pend(&mapper, MemRequest::read(0, 0)), 0);
        let end = drain(&mut ch, 0);
        // Run the governor well past both timeouts.
        let horizon = end + 20_000;
        let mut now = end;
        for _ in 0..200 {
            if !ch.try_issue(now) {
                now = ch.next_event(now).max(now + 1).min(horizon);
            } else {
                now += 1;
            }
            if now >= horizon {
                break;
            }
        }
        ch.finish(now);
        let res = ch.residencies();
        let (pd, sr) = ch.lp_entries();
        assert!(pd >= 1, "rank should have entered power-down");
        assert!(sr >= 1, "rank should have been promoted to self-refresh");
        assert!(res.iter().any(|r| r.self_refresh > 0));
    }

    #[test]
    fn refresh_issued_roughly_every_trefi() {
        let (mut ch, mapper) = make(LowPowerPolicy::disabled());
        let t = DramConfig::small_test().timing;
        // Keep traffic flowing so ranks stay awake for ~5 tREFI.
        let horizon = t.t_refi * 5;
        let mut now = 0;
        let mut next_req = 0u64;
        let mut injected = 0u64;
        while now < horizon {
            if now >= next_req && injected < 10_000 {
                let addr = (injected * 64 * 2) % (1 << 20);
                if let Ok(c) = mapper.decode(addr) {
                    if c.channel.index() == 0 {
                        ch.enqueue(pend(&mapper, MemRequest::read(addr, now)), now);
                        injected += 1;
                    } else {
                        injected += 1;
                    }
                }
                next_req = now + 50;
            }
            if !ch.try_issue(now) {
                now = ch.next_event(now).max(now + 1).min(next_req.max(now + 1));
            } else {
                now += 1;
            }
        }
        // 2 ranks x 5 refresh intervals — allow slack for staggering.
        assert!(
            ch.counters.refreshes >= 6,
            "expected ~10 refreshes, got {}",
            ch.counters.refreshes
        );
    }

    #[test]
    fn wake_from_self_refresh_pays_txs() {
        let (mut ch, mapper) = make(LowPowerPolicy {
            pd_timeout: None,
            sr_timeout: Some(100),
        });
        // Let the rank enter SR (clamp jumps: with every rank asleep the
        // next controller event may be arbitrarily far away).
        let mut now = 0;
        for _ in 0..50 {
            if !ch.try_issue(now) {
                now = ch.next_event(now).max(now + 1).min(5_000);
            } else {
                now += 1;
            }
            if now >= 5000 {
                break;
            }
        }
        let (_, sr) = ch.lp_entries();
        assert!(sr >= 1);
        // Now a read arrives; its latency must include tXS.
        let arrive = now;
        ch.enqueue(pend(&mapper, MemRequest::read(0, arrive)), arrive);
        drain(&mut ch, arrive);
        let t = DramConfig::small_test().timing;
        let lat = ch.counters.read_latency.mean().unwrap();
        assert!(
            lat >= (t.t_xs + t.t_rcd + t.cl) as f64,
            "latency {lat} must include tXS {}",
            t.t_xs
        );
    }
}
