//! gd-lint: the AST-level static-analysis gate for the GreenDIMM
//! workspace.
//!
//! Where `detlint` (crates/verify) is a fast line-substring pre-gate,
//! gd-lint parses every `.rs` file to a token stream with structural
//! context (delimiter matching, test regions, attributes) and runs a
//! pluggable catalog of lints with span-accurate diagnostics:
//!
//! | rule id       | what it enforces                                        |
//! |---------------|---------------------------------------------------------|
//! | `unit-safety` | unit-carrying values convert via gd-types newtypes      |
//! | `panic-path`  | no anonymous panics in the hot simulation crates        |
//! | `float-order` | no float accumulation over hash-order iteration         |
//! | `sim-purity`  | no wall-clock reads or entropy RNGs anywhere            |
//! | `silent-clamp`| no `.max(0.0)` clamps on IDD current deltas             |
//!
//! A finding is suppressed by `// gd-lint: allow(<rule>)` on the
//! offending line or the line directly above. See DESIGN.md §10 for the
//! catalog, the allow syntax, and how to add a lint.
//!
//! Run the binary with `cargo run -p gd-lint` (human output) or
//! `cargo run -p gd-lint -- --json` (one JSON object per finding).

pub mod lexer;
pub mod lints;
pub mod source;

use source::SourceFile;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One diagnostic: rule, span, message, rationale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: String,
    pub file: PathBuf,
    pub line: u32,
    pub col: u32,
    pub message: String,
    pub rationale: String,
}

impl Finding {
    /// Builds a finding anchored at `line:col` of `file`.
    pub fn new(
        rule: &str,
        file: &SourceFile,
        line: u32,
        col: u32,
        message: String,
        rationale: &str,
    ) -> Finding {
        Finding {
            rule: rule.to_string(),
            file: file.rel_path.clone(),
            line,
            col,
            message,
            rationale: rationale.to_string(),
        }
    }

    /// Renders the finding as one JSON object (JSON Lines output). The
    /// encoder is local because the workspace carries no serde.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{},\"rationale\":{}}}",
            json_str(&self.rule),
            json_str(&self.file.display().to_string()),
            self.line,
            self.col,
            json_str(&self.message),
            json_str(&self.rationale),
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.col,
            self.rule,
            self.message
        )
    }
}

/// Minimal JSON string encoder (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Lints one source text under a workspace-relative path. Applies allow
/// directives and sorts findings by (file, line, col, rule).
pub fn lint_source(rel_path: &Path, src: &str) -> Vec<Finding> {
    let file = SourceFile::parse(rel_path, src);
    let mut findings = Vec::new();
    for err in &file.errors {
        findings.push(Finding {
            rule: "parse-error".to_string(),
            file: file.rel_path.clone(),
            line: err.line,
            col: err.col,
            message: err.message.clone(),
            rationale: "gd-lint could not tokenize this file; fix the source or report a lexer gap"
                .to_string(),
        });
    }
    for lint in lints::all() {
        let before = findings.len();
        lint.check(&file, &mut findings);
        // Lints must tag findings with their own id; debug-check it.
        debug_assert!(findings[before..].iter().all(|f| f.rule == lint.id()));
    }
    findings.retain(|f| !file.allowed(f.line, &f.rule));
    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule)));
    findings
}

/// Directories under the workspace root that hold Rust sources (mirrors
/// detlint's walk).
pub const ROOTS: &[&str] = &["crates", "src", "tests", "examples", "benches"];

/// Recursively collects `.rs` files, skipping build output and the lint
/// fixture corpus (fixtures are deliberately bad code, exercised by the
/// fixture tests with pseudo-paths instead).
pub fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" {
                continue;
            }
            if name == "fixtures" && dir.file_name().is_some_and(|n| n == "tests") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Result of a workspace run.
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

/// Lints every Rust source under `workspace`'s source roots.
pub fn lint_workspace(workspace: &Path) -> Report {
    let mut files = Vec::new();
    for root in ROOTS {
        collect_rs_files(&workspace.join(root), &mut files);
    }
    files.sort();
    lint_files(workspace, &files)
}

/// Lints an explicit file list; paths are made workspace-relative for
/// rule scoping (fixture headers may override further).
pub fn lint_files(workspace: &Path, files: &[PathBuf]) -> Report {
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for file in files {
        let Ok(text) = fs::read_to_string(file) else {
            continue;
        };
        scanned += 1;
        let rel = file.strip_prefix(workspace).unwrap_or(file);
        findings.extend(lint_source(rel, &text));
    }
    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule)));
    Report {
        findings,
        files_scanned: scanned,
    }
}

/// Locates the workspace root from this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has the workspace root two levels up")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn allow_directive_suppresses() {
        let src = "fn f(v: &[u64], i: usize) -> u64 { v[i + 1] }\n";
        let bad = lint_source(Path::new("crates/dram/src/x.rs"), src);
        assert_eq!(bad.len(), 1, "expected one panic-path finding");
        let allowed =
            "fn f(v: &[u64], i: usize) -> u64 { v[i + 1] } // gd-lint: allow(panic-path)\n";
        assert!(lint_source(Path::new("crates/dram/src/x.rs"), allowed).is_empty());
    }

    #[test]
    fn findings_are_sorted_and_spanned() {
        let src = "fn f(m: &std::collections::HashMap<u32, f64>) -> f64 {\n    let a = m.values().sum::<f64>();\n    a\n}\n";
        let fs = lint_source(Path::new("crates/core/src/x.rs"), src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "float-order");
        assert_eq!(fs[0].line, 2);
        assert!(fs[0].col > 1);
    }

    #[test]
    fn parse_error_is_reported() {
        let fs = lint_source(
            Path::new("crates/x/src/x.rs"),
            "fn f() { let s = \"oops; }\n",
        );
        assert!(fs.iter().any(|f| f.rule == "parse-error"));
    }
}
