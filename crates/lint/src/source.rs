//! Per-file analysis context: token stream plus the structural side
//! tables every lint needs.
//!
//! On top of the raw token stream this module computes
//!
//! - **delimiter matching** (`match_close[i]` = index of the closing
//!   token for an `Open` at `i`),
//! - **test regions**: which tokens live under `#[cfg(test)]` / `#[test]`
//!   / `#[bench]` items (attribute + following braced body), so lints can
//!   exempt test code structurally instead of by substring,
//! - **allow directives**: `gd-lint: allow(<rule>[, <rule>…])` comments,
//!   honored on the offending line or the line directly above it,
//! - the **fixture path override**: a `gd-lint-fixture: path=<rel>`
//!   header comment remaps the file's workspace-relative path so fixture
//!   snippets can exercise path-scoped rules from `tests/fixtures/`.

use crate::lexer::{self, TokKind, Token};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// A fully analyzed source file, ready for lints.
pub struct SourceFile {
    /// Workspace-relative path used for rule scoping (may be overridden
    /// by a fixture header).
    pub rel_path: PathBuf,
    pub tokens: Vec<Token>,
    /// `in_test[i]` — token `i` is inside `#[cfg(test)]`/`#[test]` code.
    pub in_test: Vec<bool>,
    /// For each `Open` token index, the index of its matching `Close`.
    pub match_close: BTreeMap<usize, usize>,
    /// line → rules allowed on that line (lowercased; `all` wildcard).
    pub allows: BTreeMap<u32, Vec<String>>,
    /// Lexer errors, surfaced by the engine as `parse-error` findings.
    pub errors: Vec<lexer::LexError>,
}

impl SourceFile {
    /// Lexes and analyzes `src` under the given workspace-relative path.
    pub fn parse(rel_path: &Path, src: &str) -> SourceFile {
        let lexed = lexer::lex(src);
        let mut allows: BTreeMap<u32, Vec<String>> = BTreeMap::new();
        let mut fixture_path: Option<PathBuf> = None;
        for c in &lexed.comments {
            for rule in parse_allow_directive(&c.text) {
                for line in c.first_line..=c.last_line {
                    allows.entry(line).or_default().push(rule.clone());
                }
            }
            if let Some(p) = parse_fixture_path(&c.text) {
                fixture_path = Some(p);
            }
        }
        let match_close = match_delims(&lexed.tokens);
        let in_test = test_regions(&lexed.tokens, &match_close);
        SourceFile {
            rel_path: fixture_path.unwrap_or_else(|| rel_path.to_path_buf()),
            tokens: lexed.tokens,
            in_test,
            match_close,
            allows,
            errors: lexed.errors,
        }
    }

    /// True when `rule` is allowed at `line` (same line or the line
    /// directly above carries the directive).
    pub fn allowed(&self, line: u32, rule: &str) -> bool {
        let hit = |l: u32| {
            self.allows
                .get(&l)
                .is_some_and(|rules| rules.iter().any(|r| r == rule || r == "all"))
        };
        hit(line) || (line > 1 && hit(line - 1))
    }

    /// True when the file path puts the whole file on the panic-path
    /// allowlist: test targets, benches, examples, binary entry points,
    /// and build scripts are setup/reporting code, not the hot loop.
    pub fn is_harness_file(&self) -> bool {
        let p = &self.rel_path;
        let comps: Vec<&str> = p
            .components()
            .filter_map(|c| c.as_os_str().to_str())
            .collect();
        comps.contains(&"tests")
            || comps.contains(&"benches")
            || comps.contains(&"examples")
            || comps.contains(&"bin")
            || p.file_name()
                .is_some_and(|f| f == "main.rs" || f == "build.rs")
    }
}

/// Extracts rules from a `gd-lint: allow(a, b)` directive, if present.
fn parse_allow_directive(comment: &str) -> Vec<String> {
    let Some(pos) = comment.find("gd-lint:") else {
        return Vec::new();
    };
    let rest = comment[pos + "gd-lint:".len()..].trim_start();
    let Some(rest) = rest.strip_prefix("allow") else {
        return Vec::new();
    };
    let Some(args) = rest.trim_start().strip_prefix('(') else {
        return Vec::new();
    };
    let Some(list) = args.split(')').next() else {
        return Vec::new();
    };
    list.split(',')
        .map(|r| r.trim().to_ascii_lowercase())
        .filter(|r| !r.is_empty())
        .collect()
}

/// Extracts the path override from a `gd-lint-fixture: path=<rel>` header.
fn parse_fixture_path(comment: &str) -> Option<PathBuf> {
    let pos = comment.find("gd-lint-fixture:")?;
    let rest = comment[pos + "gd-lint-fixture:".len()..].trim_start();
    let rest = rest.strip_prefix("path=")?;
    let path = rest.split_whitespace().next()?;
    Some(PathBuf::from(path))
}

/// Matches `(`/`[`/`{` to their closing tokens. Unbalanced files map the
/// stray delimiters to nothing; lints degrade gracefully.
fn match_delims(tokens: &[Token]) -> BTreeMap<usize, usize> {
    let mut map = BTreeMap::new();
    let mut stack: Vec<(usize, char)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokKind::Open(d) => stack.push((i, d)),
            TokKind::Close(d) => {
                let want = match d {
                    ')' => '(',
                    ']' => '[',
                    _ => '{',
                };
                if let Some(&(j, open)) = stack.last() {
                    if open == want {
                        stack.pop();
                        map.insert(j, i);
                    }
                }
            }
            _ => {}
        }
    }
    map
}

/// Computes, per token, whether it sits inside test-only code.
///
/// An attribute `#[cfg(test)]`, `#[test]`, or `#[bench]` (including
/// `cfg(any(test, …))`) marks the item it decorates; the item's body is
/// the next `{…}` group at the same nesting depth (or nothing, if the
/// item ends at a `;` first, as with `use` declarations). Test regions
/// nest: everything inside a test `mod` body is test code.
fn test_regions(tokens: &[Token], match_close: &BTreeMap<usize, usize>) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    // Depth-indexed pending flag: a test attribute at depth d arms the
    // next `{` opened at depth d.
    let mut pending: Vec<bool> = vec![false];
    // Stack of "this brace group is test code" per open brace.
    let mut test_stack: Vec<bool> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let inherited = test_stack.last().copied().unwrap_or(false);
        match &tokens[i].kind {
            TokKind::Punct('#') => {
                // `#[…]` or `#![…]` attribute.
                let mut j = i + 1;
                if tokens.get(j).is_some_and(|t| t.is_punct('!')) {
                    j += 1;
                }
                if tokens.get(j).is_some_and(|t| t.kind == TokKind::Open('[')) {
                    if let Some(&end) = match_close.get(&j) {
                        if attr_is_test(&tokens[j + 1..end]) {
                            if let Some(p) = pending.last_mut() {
                                *p = true;
                            }
                            // The attribute tokens themselves belong to
                            // the test item.
                            for flag in in_test.iter_mut().take(end + 1).skip(i) {
                                *flag = true;
                            }
                        }
                        if inherited {
                            for flag in in_test.iter_mut().take(end + 1).skip(i) {
                                *flag = true;
                            }
                        }
                        i = end + 1;
                        continue;
                    }
                }
                in_test[i] = inherited;
                i += 1;
            }
            TokKind::Open(d) => {
                let pend = pending.last().copied().unwrap_or(false);
                let armed = *d == '{' && pend;
                if armed {
                    if let Some(p) = pending.last_mut() {
                        *p = false;
                    }
                }
                // A paren/bracket group between a test attribute and the
                // body (fn params, generics) rides the pending flag.
                let group_test = inherited || armed || (*d != '{' && pend);
                in_test[i] = group_test;
                test_stack.push(group_test);
                pending.push(false);
                i += 1;
            }
            TokKind::Close(_) => {
                in_test[i] = inherited;
                test_stack.pop();
                pending.pop();
                i += 1;
            }
            TokKind::Punct(';') => {
                // An item ended without a body; disarm any pending
                // attribute at this depth.
                if let Some(p) = pending.last_mut() {
                    *p = false;
                }
                in_test[i] = inherited || pending.last().copied().unwrap_or(false);
                i += 1;
            }
            _ => {
                // Tokens between a test attribute and the body (e.g. the
                // `fn name(…)` header) count as test code too.
                in_test[i] = inherited || pending.last().copied().unwrap_or(false);
                i += 1;
            }
        }
    }
    in_test
}

/// True when the attribute tokens mark test-only code: the path is
/// `test`/`bench`, or a `cfg(...)` whose arguments mention `test`.
fn attr_is_test(attr: &[Token]) -> bool {
    let Some(first) = attr.first() else {
        return false;
    };
    match first.ident() {
        Some("test") | Some("bench") => true,
        Some("cfg") => attr.iter().skip(1).any(|t| t.is_ident("test")),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(src: &str) -> SourceFile {
        SourceFile::parse(Path::new("crates/x/src/lib.rs"), src)
    }

    fn ident_in_test(f: &SourceFile, name: &str) -> bool {
        let idx = f
            .tokens
            .iter()
            .position(|t| t.is_ident(name))
            .unwrap_or_else(|| panic!("no token `{name}`"));
        f.in_test[idx]
    }

    #[test]
    fn cfg_test_mod_marks_contents() {
        let f = sf("fn hot() {}\n#[cfg(test)]\nmod tests {\n  fn helper() {}\n}\n");
        assert!(!ident_in_test(&f, "hot"));
        assert!(ident_in_test(&f, "helper"));
    }

    #[test]
    fn test_fn_attribute_covers_header_and_body() {
        let f = sf("#[test]\nfn check_it(a: u32) { body(); }\nfn hot() { core(); }\n");
        assert!(ident_in_test(&f, "check_it"));
        assert!(ident_in_test(&f, "body"));
        assert!(!ident_in_test(&f, "core"));
    }

    #[test]
    fn cfg_any_test_counts() {
        let f = sf("#[cfg(any(test, feature = \"x\"))]\nmod helpers { fn h() {} }\n");
        assert!(ident_in_test(&f, "h"));
    }

    #[test]
    fn derive_attribute_is_not_test() {
        let f = sf("#[derive(Debug, Clone)]\nstruct S { field: u32 }\n");
        assert!(!ident_in_test(&f, "field"));
    }

    #[test]
    fn attribute_consumed_by_semicolon_does_not_leak() {
        let f = sf("#[cfg(test)]\nuse std::fmt;\nfn hot() {}\n");
        assert!(!ident_in_test(&f, "hot"));
    }

    #[test]
    fn allow_directive_same_line_and_line_above() {
        let f = sf("// gd-lint: allow(panic-path)\nlet a = 1;\nlet b = 2; // gd-lint: allow(unit-safety, float-order)\n");
        assert!(f.allowed(2, "panic-path"));
        assert!(f.allowed(3, "unit-safety"));
        assert!(f.allowed(3, "float-order"));
        assert!(!f.allowed(3, "panic-path"));
        assert!(!f.allowed(1, "unit-safety"));
    }

    #[test]
    fn fixture_path_override() {
        let f = SourceFile::parse(
            Path::new("crates/lint/tests/fixtures/panic_path/bad.rs"),
            "// gd-lint-fixture: path=crates/dram/src/hot.rs\nfn f() {}\n",
        );
        assert_eq!(f.rel_path, Path::new("crates/dram/src/hot.rs"));
    }

    #[test]
    fn harness_files_by_path() {
        let mk = |p: &str| SourceFile::parse(Path::new(p), "fn f() {}");
        assert!(mk("crates/dram/tests/t.rs").is_harness_file());
        assert!(mk("crates/bench/src/bin/fig03.rs").is_harness_file());
        assert!(mk("examples/quickstart.rs").is_harness_file());
        assert!(!mk("crates/dram/src/channel.rs").is_harness_file());
    }
}
