//! The gd-lint command-line gate.
//!
//! ```text
//! cargo run -p gd-lint                 # lint the whole workspace, human output
//! cargo run -p gd-lint -- --json       # same, one JSON object per finding
//! cargo run -p gd-lint -- <paths…>     # lint specific files or directories
//! ```
//!
//! Exits 0 when clean, 1 when any finding (or a usage error) remains.
//! Explicit fixture files may carry a `// gd-lint-fixture: path=…`
//! header that remaps them into a scoped crate for rule testing.

use gd_lint::{collect_rs_files, lint_files, lint_workspace, workspace_root, Report};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!(
                    "gd-lint: AST-level static analysis for the GreenDIMM workspace\n\
                     usage: gd-lint [--json] [paths…]\n\
                     rules: unit-safety, panic-path, float-order, sim-purity\n\
                     suppress with `// gd-lint: allow(<rule>)` on or above the line"
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("gd-lint: unknown flag `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
            other => paths.push(PathBuf::from(other)),
        }
    }

    let root = workspace_root();
    let report: Report = if paths.is_empty() {
        lint_workspace(&root)
    } else {
        let mut files = Vec::new();
        for p in &paths {
            let abs = if p.is_absolute() {
                p.clone()
            } else {
                root.join(p)
            };
            if abs.is_dir() {
                collect_rs_files(&abs, &mut files);
            } else {
                files.push(abs);
            }
        }
        files.sort();
        lint_files(&root, &files)
    };

    if json {
        for f in &report.findings {
            println!("{}", f.to_json());
        }
    } else {
        for f in &report.findings {
            println!("{f}");
            println!("    rationale: {}", f.rationale);
        }
        if report.findings.is_empty() {
            println!("gd-lint: {} files clean", report.files_scanned);
        } else {
            println!(
                "gd-lint: {} finding(s) in {} files scanned",
                report.findings.len(),
                report.files_scanned
            );
        }
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
