//! `silent-clamp`: IDD current deltas must not be clamped to zero at the
//! use site.
//!
//! The DDR power model charges activity energy from differences of
//! datasheet currents (`idd4r - idd3n`, `idd5b - idd2n`, …). A negative
//! delta means the parameter set itself is inconsistent — a datasheet
//! typo or a bad override — and `.max(0.0)` at the subtraction site
//! turns that configuration error into a silent zero-energy term that
//! skews every figure downstream. The workspace contract (since the
//! MemSpec backend refactor) is to *reject* inconsistent parameters at
//! construction, via `IddParams::validate`, and compute plain deltas
//! afterwards.
//!
//! The rule is deliberately narrow: `.max(0.0)` is flagged only when the
//! receiver expression names a rail current (`idd*` / `vdd*`). Clamps of
//! headroom fractions, runtimes, or other quantities — which are
//! legitimate saturation arithmetic — never trip it, and a genuinely
//! wanted clamp can carry `// gd-lint: allow(silent-clamp)`.

use super::{open_of, Lint};
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::Finding;
use std::collections::BTreeSet;

/// True when an identifier names a datasheet rail current or voltage.
fn is_current_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower.starts_with("idd") || lower.starts_with("vdd") || lower.starts_with("ipp")
}

/// True for a float literal that is exactly zero (`0.0`, `0.`, `0.00`).
fn is_zero_float(text: &str) -> bool {
    text.trim_end_matches(|c: char| c.is_ascii_alphanumeric() && !c.is_ascii_digit())
        .parse::<f64>()
        .map(|v| v == 0.0)
        .unwrap_or(false)
}

/// Identifiers bound from an expression that names a rail current
/// (`let delta = idd.idd4r - idd.idd3n;`): the clamp is just as silent one
/// binding away, so the names carry the evidence forward.
fn current_bound_idents(file: &SourceFile) -> BTreeSet<String> {
    let tokens = &file.tokens;
    let mut names = BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        let TokKind::Ident(name) = &t.kind else {
            continue;
        };
        // `name = <expr>` with a plain `=` (not `==`, `<=`, `+=`, …).
        if !tokens.get(i + 1).is_some_and(|t| t.is_punct('='))
            || tokens.get(i + 2).is_some_and(|t| t.is_punct('='))
        {
            continue;
        }
        let rhs_has_current = tokens
            .iter()
            .skip(i + 2)
            .take_while(|t| !matches!(t.kind, TokKind::Punct(';') | TokKind::Open('{')))
            .any(|t| t.ident().is_some_and(is_current_name));
        if rhs_has_current {
            names.insert(name.clone());
        }
    }
    names
}

pub struct SilentClamp;

impl Lint for SilentClamp {
    fn id(&self) -> &'static str {
        "silent-clamp"
    }

    fn rationale(&self) -> &'static str {
        "clamping an IDD delta to zero hides an inconsistent parameter set; \
         reject it at construction (IddParams::validate) instead"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let tokens = &file.tokens;
        let bound = current_bound_idents(file);
        let carries_current = |name: &str| is_current_name(name) || bound.contains(name);
        for (i, t) in tokens.iter().enumerate() {
            if file.in_test[i] {
                continue;
            }
            // `.max(0.0)`: identifier `max` preceded by `.`, whose single
            // argument is a zero float literal.
            if !t.is_ident("max") || i == 0 || !tokens[i - 1].is_punct('.') {
                continue;
            }
            let arg_zero = tokens
                .get(i + 1)
                .is_some_and(|o| o.kind == TokKind::Open('('))
                && matches!(tokens.get(i + 2).map(|t| &t.kind),
                    Some(TokKind::Float(s)) if is_zero_float(s))
                && tokens
                    .get(i + 3)
                    .is_some_and(|c| matches!(c.kind, TokKind::Close(')')));
            if !arg_zero {
                continue;
            }
            // Receiver evidence: walk the postfix expression backwards from
            // the `.` and look for a rail-current name. The walk mirrors
            // `postfix_chain_idents` but keeps the receiver's span so `-`
            // stays visible in diagnostics context.
            let mut j = i - 1; // index of the `.`
            let mut current: Option<&str> = None;
            while let Some(k) = j.checked_sub(1) {
                match &tokens[k].kind {
                    TokKind::Close(_) => {
                        let Some(open) = open_of(file, k) else { break };
                        for t in tokens.iter().take(k).skip(open + 1) {
                            if let Some(name) = t.ident() {
                                if carries_current(name) {
                                    current = Some(name);
                                }
                            }
                        }
                        j = open;
                    }
                    TokKind::Ident(name) => {
                        if carries_current(name) {
                            current = Some(name);
                        }
                        j = k;
                    }
                    TokKind::Int(_) | TokKind::Float(_) => j = k,
                    TokKind::Punct('.') | TokKind::Punct('?') => j = k,
                    TokKind::Punct(':') if k >= 1 && tokens[k - 1].is_punct(':') => j = k - 1,
                    _ => break,
                }
            }
            if let Some(name) = current {
                out.push(Finding::new(
                    self.id(),
                    file,
                    t.line,
                    t.col,
                    format!(
                        "silent `.max(0.0)` clamp on rail-current expression \
                         (`{name}`); validate the parameter set at construction \
                         and compute the plain delta"
                    ),
                    self.rationale(),
                ));
            }
        }
    }
}
