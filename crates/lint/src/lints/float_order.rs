//! `float-order`: floating-point accumulation must iterate a provably
//! ordered source.
//!
//! Float addition is not associative, so summing values out of a
//! `HashMap`/`HashSet` iterator produces run-to-run (and
//! machine-to-machine) drift — exactly the nondeterminism the telemetry
//! byte-identity gate exists to prevent. This extends detlint's
//! `maporder` line scan to expression level:
//!
//! - a `.sum()` / `.fold(…)` / `.product()` chain rooted at an
//!   identifier declared as `HashMap`/`HashSet` in the same file, and
//! - a `for … in <hash>.iter()/values()/… { … += … }` loop body,
//!
//! are flagged when the expression shows float evidence (an `f32`/`f64`
//! token or a float literal in the chain/body). Integer accumulation is
//! order-independent and stays legal, as does any accumulation over
//! `BTreeMap`, slices, or sorted vectors.
//!
//! Declarations are tracked per file (field `x: HashMap<…>`, binding
//! `let x = HashMap::new()`, parameters); cross-file type knowledge is
//! out of reach without full inference, which is why detlint's crude
//! per-crate `HashMap` ban stays on as the pre-gate in the sweep and
//! telemetry crates.

use super::{postfix_chain_idents, Lint};
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::Finding;
use std::collections::BTreeSet;

/// Iterator-producing methods on hash collections.
const HASH_ITERS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "values",
    "values_mut",
    "into_values",
    "keys",
    "into_keys",
    "drain",
];

/// Accumulators whose result depends on iteration order for floats.
const ACCUMULATORS: &[&str] = &["sum", "fold", "product"];

pub struct FloatOrder;

impl Lint for FloatOrder {
    fn id(&self) -> &'static str {
        "float-order"
    }

    fn rationale(&self) -> &'static str {
        "float addition is not associative; accumulating over hash-order \
         iteration makes results differ run to run"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let hash_names = declared_hash_idents(file);
        if hash_names.is_empty() {
            return;
        }
        let float_names = declared_float_idents(file);
        let tokens = &file.tokens;
        for (i, t) in tokens.iter().enumerate() {
            let TokKind::Ident(name) = &t.kind else {
                continue;
            };
            // Chain form: `<hash>.values().map(…).sum::<f64>()`.
            if ACCUMULATORS.contains(&name.as_str())
                && i > 0
                && tokens[i - 1].is_punct('.')
                && tokens
                    .get(i + 1)
                    .is_some_and(|t| t.kind == TokKind::Open('(') || t.is_punct(':'))
            {
                let chain = postfix_chain_idents(file, i);
                let rooted_in_hash = chain
                    .iter()
                    .any(|&k| tokens[k].ident().is_some_and(|n| hash_names.contains(n)))
                    && chain
                        .iter()
                        .any(|&k| tokens[k].ident().is_some_and(|n| HASH_ITERS.contains(&n)));
                if rooted_in_hash
                    && float_evidence(file, *chain.first().unwrap_or(&i), i + 8, &float_names)
                {
                    out.push(Finding::new(
                        self.id(),
                        file,
                        t.line,
                        t.col,
                        format!(
                            "float `{name}` over hash-order iteration; collect into \
                             a sorted Vec or use a BTreeMap before accumulating"
                        ),
                        self.rationale(),
                    ));
                }
            }
            // Loop form: `for v in hash.values() { acc += …; }`.
            if name == "for" {
                if let Some(f) = self.check_for_loop(file, i, &hash_names, &float_names) {
                    out.push(f);
                }
            }
        }
    }
}

impl FloatOrder {
    fn check_for_loop(
        &self,
        file: &SourceFile,
        for_idx: usize,
        hash_names: &BTreeSet<String>,
        float_names: &BTreeSet<String>,
    ) -> Option<Finding> {
        let tokens = &file.tokens;
        // `for<'a>` HRTB is not a loop.
        if tokens.get(for_idx + 1).is_some_and(|t| t.is_punct('<')) {
            return None;
        }
        // Find `in` and the body `{` at top level relative to the `for`.
        let mut depth = 0usize;
        let mut in_idx = None;
        let mut body_open = None;
        for (j, t) in tokens.iter().enumerate().skip(for_idx + 1) {
            match &t.kind {
                TokKind::Open('{') if depth == 0 => {
                    body_open = Some(j);
                    break;
                }
                TokKind::Open(_) => depth += 1,
                TokKind::Close(_) => depth = depth.saturating_sub(1),
                TokKind::Ident(s) if s == "in" && depth == 0 && in_idx.is_none() => {
                    in_idx = Some(j);
                }
                _ => {}
            }
        }
        let (in_idx, body_open) = (in_idx?, body_open?);
        let body_close = *file.match_close.get(&body_open)?;
        // The iterated source must mention a hash-declared name; an
        // explicit iteration method strengthens it but `for (k, v) in
        // &map` has none, so the name alone is the trigger.
        let src = &tokens[in_idx + 1..body_open];
        let src_is_hash = src
            .iter()
            .any(|t| t.ident().is_some_and(|n| hash_names.contains(n)));
        if !src_is_hash {
            return None;
        }
        // Look for `+=` / `-=` / `*=` on a float in the body. Evidence
        // is judged on the accumulator's own *statement* so an unrelated
        // float comparison elsewhere in the body cannot convict an
        // integer counter.
        for abs in body_open + 1..body_close {
            if matches!(tokens[abs].kind, TokKind::Punct('+' | '-' | '*'))
                && tokens.get(abs + 1).is_some_and(|n| n.is_punct('='))
            {
                let stmt_start = (body_open + 1..abs)
                    .rev()
                    .find(|&k| {
                        matches!(
                            tokens[k].kind,
                            TokKind::Punct(';') | TokKind::Open('{') | TokKind::Close('}')
                        )
                    })
                    .map_or(body_open + 1, |k| k + 1);
                let stmt_end = (abs..body_close)
                    .find(|&k| tokens[k].is_punct(';'))
                    .unwrap_or(body_close);
                if float_evidence(file, stmt_start, stmt_end, float_names) {
                    return Some(Finding::new(
                        self.id(),
                        file,
                        tokens[abs].line,
                        tokens[abs].col,
                        "float accumulation inside a hash-order loop; iterate a \
                         BTreeMap or sort the values first"
                            .to_string(),
                        self.rationale(),
                    ));
                }
            }
        }
        None
    }
}

/// Identifiers declared in this file with a `HashMap`/`HashSet` type or
/// initializer: `name: HashMap<…>` (fields, params, lets) and
/// `let name = HashMap::new()` / `HashSet::from(…)`.
fn declared_hash_idents(file: &SourceFile) -> BTreeSet<String> {
    let tokens = &file.tokens;
    let mut names = BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        let TokKind::Ident(ty) = &t.kind else {
            continue;
        };
        if ty != "HashMap" && ty != "HashSet" {
            continue;
        }
        // Walk back over the path prefix (`std::collections::`).
        let mut j = i;
        while j >= 2 && tokens[j - 1].is_punct(':') && tokens[j - 2].is_punct(':') {
            j -= 2;
            if j >= 1 && matches!(tokens[j - 1].kind, TokKind::Ident(_)) {
                j -= 1;
            }
        }
        // Skip type wrappers between the declaration separator and the
        // path: `&`, `&mut`, lifetimes, and generic shells such as
        // `Option<` / `Arc<`.
        while let Some(k) = j.checked_sub(1) {
            match &tokens[k].kind {
                TokKind::Punct('&') | TokKind::Punct('<') | TokKind::Lifetime(_) => j = k,
                TokKind::Ident(s) if s == "mut" => j = k,
                TokKind::Ident(_) if tokens.get(k + 1).is_some_and(|t| t.is_punct('<')) => j = k,
                _ => break,
            }
        }
        // `name : <path> HashMap` or `name = <path> HashMap`.
        if j >= 2 {
            let sep = &tokens[j - 1];
            let is_decl_sep =
                (sep.is_punct(':') && !tokens[j - 2].is_punct(':')) || sep.is_punct('=');
            if is_decl_sep {
                if let TokKind::Ident(name) = &tokens[j - 2].kind {
                    names.insert(name.clone());
                }
            }
        }
    }
    names
}

/// Identifiers bound to floats in this file: `x: f64` (params, fields,
/// ascribed lets) and `x = <float literal>` initializations.
fn declared_float_idents(file: &SourceFile) -> BTreeSet<String> {
    let tokens = &file.tokens;
    let mut names = BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        if i < 2 {
            continue;
        }
        let sep_ok = match &t.kind {
            TokKind::Ident(ty) if ty == "f64" || ty == "f32" => {
                tokens[i - 1].is_punct(':') && !tokens[i - 2].is_punct(':')
            }
            TokKind::Float(_) => tokens[i - 1].is_punct('='),
            _ => false,
        };
        if !sep_ok {
            continue;
        }
        if let TokKind::Ident(name) = &tokens[i - 2].kind {
            names.insert(name.clone());
        }
    }
    names
}

/// True when tokens in `[lo, hi)` (clamped) contain float evidence: an
/// `f32`/`f64` token, a float literal, a float-bound identifier, or an
/// energy-ish name.
fn float_evidence(file: &SourceFile, lo: usize, hi: usize, floats: &BTreeSet<String>) -> bool {
    let hi = hi.min(file.tokens.len());
    file.tokens[lo..hi].iter().any(|t| match &t.kind {
        TokKind::Float(_) => true,
        TokKind::Ident(s) => {
            s == "f64"
                || s == "f32"
                || floats.contains(s)
                || (super::unit_safety::is_unit_name(s)
                    && !s.to_ascii_lowercase().contains("cycle"))
        }
        _ => false,
    })
}
