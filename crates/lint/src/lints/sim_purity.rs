//! `sim-purity`: AST-level determinism hazards.
//!
//! Reimplements the detlint hazard classes on tokens instead of raw
//! lines: entropy-seeded RNG construction and wall-clock reads. Because
//! the lexer never hands comments or string contents to lints, prose
//! mentioning the hazards needs no special-casing, and hazards behind
//! `cfg` attributes are still caught (the token stream does not expand
//! or drop cfg'd code).
//!
//! The rule tables below spell the banned names in plain string
//! literals: in *this* crate's own source they lex as `Str` tokens, not
//! identifiers, so the analyzer does not flag itself.

use super::{is_path_sep, Lint};
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::Finding;

/// Banned two-segment paths (`Seg0::seg1`). Kept in sync with
/// `clippy.toml`'s `disallowed-methods`; a test cross-checks the two.
pub const BANNED_PATHS: &[(&str, &str, &str)] = &[
    (
        "Instant",
        "now",
        "wall-clock read; simulated time comes from SimTime/cycle counters",
    ),
    (
        "SystemTime",
        "now",
        "wall-clock read; simulated time comes from SimTime",
    ),
    (
        "rand",
        "random",
        "entropy-seeded value; derive from the configured seed instead",
    ),
];

/// Banned callables regardless of path/receiver position.
pub const BANNED_CALLS: &[(&str, &str)] = &[
    (
        "thread_rng",
        "thread-local entropy RNG; use gd_types::rng with a fixed seed",
    ),
    (
        "from_entropy",
        "entropy-seeded RNG; seed from the configuration instead",
    ),
];

/// True when this rule's catalog covers a fully qualified method path
/// like `std::time::Instant::now` (used by the clippy.toml cross-check).
pub fn covers_path(path: &str) -> bool {
    let mut segs = path.rsplit("::");
    let (Some(last), Some(prev)) = (segs.next(), segs.next()) else {
        return false;
    };
    BANNED_PATHS
        .iter()
        .any(|(a, b, _)| *a == prev && *b == last)
        || BANNED_CALLS.iter().any(|(name, _)| *name == last)
}

pub struct SimPurity;

impl Lint for SimPurity {
    fn id(&self) -> &'static str {
        "sim-purity"
    }

    fn rationale(&self) -> &'static str {
        "every result must be a pure function of configuration and seed; \
         wall-clock reads and entropy RNGs break replayability"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        let tokens = &file.tokens;
        for (i, t) in tokens.iter().enumerate() {
            let TokKind::Ident(name) = &t.kind else {
                continue;
            };
            // `Seg0::seg1` path expressions (e.g. a monotonic-clock read).
            for (seg0, seg1, why) in BANNED_PATHS {
                if name == seg0
                    && is_path_sep(tokens, i + 1)
                    && tokens.get(i + 3).is_some_and(|t| t.is_ident(seg1))
                {
                    out.push(Finding::new(
                        self.id(),
                        file,
                        t.line,
                        t.col,
                        format!("`{seg0}::{seg1}` — {why}"),
                        self.rationale(),
                    ));
                }
            }
            // Bare or method-position calls (`thread_rng()`,
            // `SmallRng::from_entropy()`, `rng.from_entropy()`).
            for (call, why) in BANNED_CALLS {
                if name == call
                    && tokens
                        .get(i + 1)
                        .is_some_and(|t| t.kind == TokKind::Open('('))
                {
                    // Both free-fn position and method/path position are
                    // hazards; only skip a definition (`fn thread_rng`),
                    // which the workspace never has but fixtures might
                    // exercise.
                    let is_def = i > 0 && tokens[i - 1].is_ident("fn");
                    if !is_def {
                        out.push(Finding::new(
                            self.id(),
                            file,
                            t.line,
                            t.col,
                            format!("`{call}(…)` — {why}"),
                            self.rationale(),
                        ));
                    }
                }
            }
        }
    }
}
