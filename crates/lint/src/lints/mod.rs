//! The lint catalog and shared expression-walking helpers.
//!
//! Each lint is a [`Lint`] implementation over a parsed [`SourceFile`];
//! the engine (in `lib.rs`) runs every registered lint and then applies
//! `gd-lint: allow(...)` suppressions centrally, so lints only ever push
//! raw findings.

pub mod float_order;
pub mod panic_path;
pub mod silent_clamp;
pub mod sim_purity;
pub mod unit_safety;

use crate::lexer::{TokKind, Token};
use crate::source::SourceFile;
use crate::Finding;

/// A single static-analysis rule.
pub trait Lint {
    /// Stable rule id, as used in diagnostics and allow directives
    /// (kebab-case, e.g. `panic-path`).
    fn id(&self) -> &'static str;
    /// One-line rationale shown with every diagnostic.
    fn rationale(&self) -> &'static str;
    /// Pushes findings for `file`; suppression is handled by the caller.
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>);
}

/// All shipped lints, in catalog order.
pub fn all() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(unit_safety::UnitSafety),
        Box::new(panic_path::PanicPath),
        Box::new(float_order::FloatOrder),
        Box::new(sim_purity::SimPurity),
        Box::new(silent_clamp::SilentClamp),
    ]
}

/// True when the file lives under one of the given workspace-relative
/// crate prefixes.
pub fn in_scope(file: &SourceFile, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| file.rel_path.starts_with(p))
}

/// Index of the previous token, skipping nothing (the lexer already
/// dropped trivia); `None` at the start.
pub fn prev(i: usize) -> Option<usize> {
    i.checked_sub(1)
}

/// True when `tokens[i]` starts a method call `.name(`: the token is an
/// identifier preceded by `.` and followed by `(`.
pub fn is_method_call(tokens: &[Token], i: usize) -> bool {
    let before_dot = prev(i).map(|j| &tokens[j]);
    before_dot.is_some_and(|t| t.is_punct('.'))
        && tokens
            .get(i + 1)
            .is_some_and(|t| t.kind == TokKind::Open('('))
}

/// True when `tokens[i]` and `tokens[i + 1]` form a `::` path separator.
pub fn is_path_sep(tokens: &[Token], i: usize) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
}

/// Given the index of a `Close` token, finds the matching `Open` index
/// by scanning the match table (linear in the table, fine at file scale).
pub fn open_of(file: &SourceFile, close_idx: usize) -> Option<usize> {
    file.match_close
        .iter()
        .find(|&(_, &c)| c == close_idx)
        .map(|(&o, _)| o)
}

/// Walks backwards from `i` (exclusive) over one postfix expression —
/// balanced groups, `.` chains, `::` paths — and returns the indices of
/// the identifier tokens that make it up, innermost-last. Used to answer
/// "what is being cast / indexed / iterated?".
///
/// Example: for `self.cfg.timing.burst_cycles() as f64`, called at the
/// index of `as`, returns the indices of `self`, `cfg`, `timing`,
/// `burst_cycles`.
pub fn postfix_chain_idents(file: &SourceFile, i: usize) -> Vec<usize> {
    let tokens = &file.tokens;
    let mut idents = Vec::new();
    let mut j = i;
    while let Some(k) = j.checked_sub(1) {
        match &tokens[k].kind {
            TokKind::Close(_) => {
                // Skip the balanced group (call args, index expr); also
                // collect idents inside it so `(a + b) as f64` sees both.
                let Some(open) = open_of(file, k) else { break };
                for (idx, t) in tokens.iter().enumerate().take(k).skip(open + 1) {
                    if matches!(t.kind, TokKind::Ident(_)) {
                        idents.push(idx);
                    }
                }
                j = open;
            }
            TokKind::Ident(_) => {
                idents.push(k);
                j = k;
            }
            TokKind::Int(_) | TokKind::Float(_) => {
                j = k;
            }
            TokKind::Punct('.') | TokKind::Punct('?') => {
                j = k;
            }
            TokKind::Punct(':') => {
                // Only continue through a full `::`; a single `:` ends
                // the expression (type ascription, struct field).
                if k >= 1 && tokens[k - 1].is_punct(':') {
                    j = k - 1;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    idents.reverse();
    idents
}

/// Lowercases an identifier once for the name heuristics.
pub fn lower(tokens: &[Token], i: usize) -> String {
    tokens[i].ident().unwrap_or("").to_ascii_lowercase()
}
