//! `unit-safety`: unit-carrying values cross type boundaries only
//! through the gd-types newtype methods.
//!
//! The workspace mixes cycles, picoseconds, and joules; the newtypes
//! (`Cycles`, `SimTime`) exist so those never collide silently. This
//! rule flags, outside test code:
//!
//! - **raw casts** — `x as u64` / `x as f64` where the cast source names
//!   a unit-carrying quantity (`cycles`, `*_ps`, `energy_*`, `*_pj`, …).
//!   Conversions belong in audited methods (`Cycles::as_u64`,
//!   `SimTime::as_secs_f64`, `Cycles::as_f64`), not ad-hoc casts at use
//!   sites. `crates/types` itself is exempt: that is where the audited
//!   conversion points live.
//! - **bare magnitude constants** — arithmetic (`+ - *`) combining a
//!   unit-named value with an integer literal of magnitude ≥ 1000 or
//!   written with digit grouping (`1_000`): a constant that large next
//!   to a unit-carrying name is almost always a unit conversion factor
//!   that should be a named constant or newtype method. Small literals
//!   (`cycles + 1`) are normal stepping and stay legal.
//!
//! The heuristic is name-based (no type inference); names are chosen so
//! counts (`reads`, `hits`) never trip it.

use super::{in_scope, postfix_chain_idents, Lint};
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::Finding;

/// Numeric primitive targets a flagged cast can have.
const NUM_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// True when an identifier names a unit-carrying quantity.
pub fn is_unit_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    if lower.contains("cycle") || lower.contains("energy") || lower.contains("joule") {
        return true;
    }
    if lower.contains("simtime") || lower.contains("sim_time") {
        return true;
    }
    // Suffix units: picoseconds, picojoules.
    lower.ends_with("_ps") || lower.ends_with("_pj") || lower == "ps" || lower == "pj"
}

/// True for an integer literal that reads as a magnitude/conversion
/// constant: digit grouping, or value ≥ 1000.
fn is_magnitude_literal(text: &str) -> bool {
    if text.contains('_') {
        return true;
    }
    // Strip a type suffix (`1000u64`) and parse; hex/octal/binary
    // literals are bit patterns, not magnitudes.
    if text.starts_with("0x") || text.starts_with("0o") || text.starts_with("0b") {
        return false;
    }
    let digits: String = text.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse::<u64>().map(|v| v >= 1000).unwrap_or(false)
}

pub struct UnitSafety;

impl Lint for UnitSafety {
    fn id(&self) -> &'static str {
        "unit-safety"
    }

    fn rationale(&self) -> &'static str {
        "cycles, picoseconds, and joules must convert through the gd-types \
         newtype methods so units cannot collide silently"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        // gd-types hosts the audited conversion points; the lint crate's
        // fixtures describe casts in prose and tables.
        if in_scope(file, &["crates/types"]) {
            return;
        }
        let tokens = &file.tokens;
        for (i, t) in tokens.iter().enumerate() {
            if file.in_test[i] {
                continue;
            }
            // Raw cast: `<expr> as <numeric type>`.
            if t.is_ident("as")
                && tokens
                    .get(i + 1)
                    .and_then(|t| t.ident())
                    .is_some_and(|ty| NUM_TYPES.contains(&ty))
            {
                let chain = postfix_chain_idents(file, i);
                // A unit-neutralizing tail (`cycles_vec.len()`) yields a
                // count, not a unit, however the receiver is named.
                let tail_neutral = chain
                    .last()
                    .and_then(|&k| tokens[k].ident())
                    .is_some_and(|n| matches!(n, "len" | "count" | "is_empty" | "capacity"));
                if tail_neutral {
                    continue;
                }
                let suspect = chain
                    .iter()
                    .rev()
                    .find(|&&k| is_unit_name(tokens[k].ident().unwrap_or("")));
                if let Some(&k) = suspect {
                    let name = tokens[k].ident().unwrap_or("?");
                    let ty = tokens[i + 1].ident().unwrap_or("?");
                    out.push(Finding::new(
                        self.id(),
                        file,
                        t.line,
                        t.col,
                        format!(
                            "raw `as {ty}` cast of unit-carrying `{name}`; convert \
                             through a gd-types newtype method instead"
                        ),
                        self.rationale(),
                    ));
                }
                continue;
            }
            // Bare magnitude constant next to a unit-carrying name.
            if let TokKind::Punct(op @ ('+' | '-' | '*')) = t.kind {
                // Skip compound forms that are not binary arithmetic:
                // `+=`, `->`, `*const`, unary minus after `(`/`=`/`,`.
                if tokens
                    .get(i + 1)
                    .is_some_and(|n| n.is_punct('=') || n.is_punct('>'))
                {
                    continue;
                }
                let lhs_lit = i > 0
                    && matches!(&tokens[i - 1].kind, TokKind::Int(s) if is_magnitude_literal(s));
                let rhs_lit = matches!(tokens.get(i + 1).map(|t| &t.kind), Some(TokKind::Int(s)) if is_magnitude_literal(s));
                let (lit_side, name_side) = if rhs_lit {
                    // `expr op LIT`: the unit name is the expression tail.
                    (i + 1, postfix_chain_idents(file, i).last().copied())
                } else if lhs_lit {
                    // `LIT op ident…`: look at the identifier right after.
                    let name = tokens.get(i + 1).and_then(|t| t.ident()).map(|_| i + 1);
                    (i - 1, name)
                } else {
                    continue;
                };
                let Some(k) = name_side else { continue };
                let name = tokens[k].ident().unwrap_or("");
                if is_unit_name(name) {
                    let TokKind::Int(lit) = &tokens[lit_side].kind else {
                        continue;
                    };
                    out.push(Finding::new(
                        self.id(),
                        file,
                        t.line,
                        t.col,
                        format!(
                            "bare magnitude constant `{lit}` combined (`{op}`) with \
                             unit-carrying `{name}`; name the constant or use a \
                             newtype conversion"
                        ),
                        self.rationale(),
                    ));
                }
            }
        }
    }
}
