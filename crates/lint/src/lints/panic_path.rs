//! `panic-path`: no unexplained panics in the hot simulation crates.
//!
//! Fleet-scale runs (thousands of simulated hosts per sweep) turn any
//! latent panic into a debugging session with no backtrace context. In
//! the hot crates this rule denies:
//!
//! - `.unwrap()` — convert to `.expect("invariant: …")` naming the
//!   invariant, or return an error the caller can act on;
//! - `.expect("")` — an empty message is an unwrap with extra steps;
//! - indexing with a *computed* index (`v[i + 1]`, `&x[a..a + n]`) —
//!   arithmetic in an index is the classic off-by-one panic; use
//!   `.get()`/`.get_mut()` or hoist the arithmetic behind a checked
//!   helper. Plain `v[i]` with a loop-bound identifier is allowed: the
//!   workspace's flat-array hot paths (ROADMAP item 2) depend on it.
//!
//! Test code (`#[cfg(test)]`, `#[test]`) and harness files (tests/,
//! benches/, examples/, src/bin/, main.rs) are structurally exempt:
//! panicking fast is correct there.

use super::{in_scope, Lint};
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::Finding;

/// Crates whose non-test code must be panic-disciplined.
pub const HOT_CRATES: &[&str] = &["crates/dram", "crates/mmsim", "crates/ksm", "crates/core"];

/// Keywords that can directly precede `[` without making it an index
/// expression (e.g. `&mut [T]`, `return [a, b]`).
const NON_POSTFIX_KEYWORDS: &[&str] = &[
    "mut", "ref", "dyn", "impl", "in", "return", "break", "continue", "else", "as", "move",
    "static", "const", "where", "for", "if", "while", "match", "loop", "let", "fn", "pub", "use",
    "enum", "struct", "trait", "type", "mod", "unsafe", "box", "await", "yield",
];

pub struct PanicPath;

impl Lint for PanicPath {
    fn id(&self) -> &'static str {
        "panic-path"
    }

    fn rationale(&self) -> &'static str {
        "hot simulation loops must not panic without naming the violated \
         invariant; at fleet scale an anonymous unwrap is undebuggable"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !in_scope(file, HOT_CRATES) || file.is_harness_file() {
            return;
        }
        let tokens = &file.tokens;
        for (i, t) in tokens.iter().enumerate() {
            if file.in_test[i] {
                continue;
            }
            match &t.kind {
                TokKind::Ident(name) if name == "unwrap" => {
                    // `.unwrap()` with no arguments; `unwrap_or` etc. are
                    // separate identifiers and never match.
                    let is_method = i > 0 && tokens[i - 1].is_punct('.');
                    let empty_args = tokens
                        .get(i + 1)
                        .is_some_and(|t| t.kind == TokKind::Open('('))
                        && tokens
                            .get(i + 2)
                            .is_some_and(|t| t.kind == TokKind::Close(')'));
                    if is_method && empty_args {
                        out.push(Finding::new(
                            self.id(),
                            file,
                            t.line,
                            t.col,
                            "`.unwrap()` in a hot simulation crate; use \
                             `.expect(\"invariant: …\")` or return an error"
                                .to_string(),
                            self.rationale(),
                        ));
                    }
                }
                TokKind::Ident(name) if name == "expect" => {
                    let is_method = i > 0 && tokens[i - 1].is_punct('.');
                    let empty_msg = tokens
                        .get(i + 1)
                        .is_some_and(|t| t.kind == TokKind::Open('('))
                        && matches!(tokens.get(i + 2).map(|t| &t.kind),
                            Some(TokKind::Str(s)) if s.is_empty())
                        || tokens
                            .get(i + 1)
                            .is_some_and(|t| t.kind == TokKind::Open('('))
                            && tokens
                                .get(i + 2)
                                .is_some_and(|t| t.kind == TokKind::Close(')'));
                    if is_method && empty_msg {
                        out.push(Finding::new(
                            self.id(),
                            file,
                            t.line,
                            t.col,
                            "`.expect(\"\")` without a message; name the violated invariant"
                                .to_string(),
                            self.rationale(),
                        ));
                    }
                }
                TokKind::Open('[') if self.is_computed_index(file, i) => {
                    out.push(Finding::new(
                        self.id(),
                        file,
                        t.line,
                        t.col,
                        "indexing with a computed index can panic; use \
                         `.get()`/`.get_mut()` or a checked helper"
                            .to_string(),
                        self.rationale(),
                    ));
                }
                _ => {}
            }
        }
    }
}

impl PanicPath {
    /// True when `[` at `i` is an index expression whose index contains
    /// arithmetic (`+ - * / %`) or nested indexing.
    fn is_computed_index(&self, file: &SourceFile, i: usize) -> bool {
        let tokens = &file.tokens;
        // Postfix position: the `[` must directly follow an expression
        // tail (identifier that is not a keyword, closing group, or `?`).
        let postfix = i > 0
            && match &tokens[i - 1].kind {
                TokKind::Ident(name) => !NON_POSTFIX_KEYWORDS.contains(&name.as_str()),
                TokKind::Close(')') | TokKind::Close(']') => true,
                TokKind::Punct('?') => true,
                _ => false,
            };
        if !postfix {
            return false;
        }
        let Some(&end) = file.match_close.get(&i) else {
            return false;
        };
        // `%` is deliberately absent: `v[i % v.len()]` is a bounded (and
        // common) pattern, while `+ - * /` are the off-by-one classics.
        // An operator only counts when it is *binary* — preceded by an
        // expression tail — so derefs (`v[*i]`) and unary minus stay legal.
        (i + 1..end).any(|k| match tokens[k].kind {
            TokKind::Punct('+' | '-' | '*' | '/') => matches!(
                tokens[k - 1].kind,
                TokKind::Ident(_)
                    | TokKind::Int(_)
                    | TokKind::Float(_)
                    | TokKind::Close(_)
                    | TokKind::Punct('?')
            ),
            TokKind::Open('[') => true,
            _ => false,
        })
    }
}
