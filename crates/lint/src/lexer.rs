//! A self-contained Rust lexer producing spanned tokens.
//!
//! The workspace has no external dependencies (no `syn`), so gd-lint
//! carries its own tokenizer. It understands everything the lints need to
//! be comment- and string-safe: line and (nested) block comments, string /
//! raw-string / byte-string / C-string literals, character literals vs.
//! lifetimes, raw identifiers, and numeric literals with suffixes.
//!
//! Comments are not tokens: they are collected separately so the engine
//! can recognize `// gd-lint: allow(<rule>)` opt-out directives without
//! the lints ever seeing prose. String literal *contents* likewise never
//! reach the lints — only a `Str`-kind token marking the spot — which is
//! what lets rule tables in this crate spell hazard names in plain string
//! literals without flagging themselves.

use std::fmt;

/// What a token is. Identifier and keyword text is kept verbatim;
/// literal text is kept so lints can inspect e.g. empty `expect("")`
/// messages or integer magnitudes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `fn`, `as`, `r#match` → `match`).
    Ident(String),
    /// Lifetime such as `'a` (without the quote).
    Lifetime(String),
    /// Integer literal, verbatim (`0x1F`, `1_000u64`).
    Int(String),
    /// Float literal, verbatim (`1.5e-3`, `2.0f32`).
    Float(String),
    /// Any string-like literal (`"…"`, `r#"…"#`, `b"…"`, `c"…"`). The
    /// payload is the literal *contents* (escapes unprocessed).
    Str(String),
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A single punctuation character (`+`, `.`, `:`; multi-char
    /// operators appear as adjacent punct tokens).
    Punct(char),
    /// Opening delimiter: `(`, `[`, or `{`.
    Open(char),
    /// Closing delimiter: `)`, `]`, or `}`.
    Close(char),
}

/// A token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub line: u32,
    pub col: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier/keyword.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when the token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }

    /// True when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A comment with the line span it covers (block comments may span
/// several lines; directives are attributed to every covered line).
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub first_line: u32,
    pub last_line: u32,
}

/// Lexer failure (unterminated literal or comment). The engine reports
/// these as findings of the pseudo-rule `parse-error` rather than
/// silently skipping the file.
#[derive(Debug, Clone)]
pub struct LexError {
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

/// Lexer output: the token stream plus side tables.
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    pub errors: Vec<LexError>,
}

/// Tokenizes `src`, collecting comments separately.
pub fn lex(src: &str) -> Lexed {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
    comments: Vec<Comment>,
    errors: Vec<LexError>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
            comments: Vec::new(),
            errors: Vec::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    /// Advances one byte, tracking line/column. Multi-byte UTF-8
    /// continuation bytes do not advance the column; positions are
    /// therefore character-accurate for ASCII and close enough for the
    /// occasional non-ASCII char in prose.
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            self.col += 1;
        }
        Some(b)
    }

    fn push(&mut self, kind: TokKind, line: u32, col: u32) {
        self.tokens.push(Token { kind, line, col });
    }

    fn error(&mut self, line: u32, col: u32, message: &str) {
        self.errors.push(LexError {
            line,
            col,
            message: message.to_string(),
        });
    }

    fn run(mut self) -> Lexed {
        while let Some(b) = self.peek() {
            let (line, col) = (self.line, self.col);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek_at(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek_at(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(line, col),
                b'\'' => self.char_or_lifetime(line, col),
                b'(' | b'[' | b'{' => {
                    self.bump();
                    self.push(TokKind::Open(b as char), line, col);
                }
                b')' | b']' | b'}' => {
                    self.bump();
                    self.push(TokKind::Close(b as char), line, col);
                }
                b'0'..=b'9' => self.number(line, col),
                b if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => {
                    self.ident_like(line, col)
                }
                _ => {
                    self.bump();
                    self.push(TokKind::Punct(b as char), line, col);
                }
            }
        }
        Lexed {
            tokens: self.tokens,
            comments: self.comments,
            errors: self.errors,
        }
    }

    fn line_comment(&mut self) {
        let first_line = self.line;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.comments.push(Comment {
            text,
            first_line,
            last_line: first_line,
        });
    }

    fn block_comment(&mut self) {
        let (first_line, col) = (self.line, self.col);
        let start = self.pos;
        self.bump();
        self.bump(); // consume `/*`
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => {
                    self.error(first_line, col, "unterminated block comment");
                    break;
                }
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.comments.push(Comment {
            text,
            first_line,
            last_line: self.line,
        });
    }

    /// Lexes a `"…"` string starting at the current quote.
    fn string(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        let start = self.pos;
        loop {
            match self.peek() {
                Some(b'\\') => {
                    self.bump();
                    self.bump();
                }
                Some(b'"') => {
                    let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                    self.bump();
                    self.push(TokKind::Str(text), line, col);
                    return;
                }
                Some(_) => {
                    self.bump();
                }
                None => {
                    self.error(line, col, "unterminated string literal");
                    return;
                }
            }
        }
    }

    /// Lexes `r"…"` / `r#"…"#` style raw strings; the caller has already
    /// consumed the prefix up to (not including) the `r`.
    fn raw_string(&mut self, line: u32, col: u32) {
        self.bump(); // `r`
        let mut hashes = 0usize;
        while self.peek() == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        if self.peek() != Some(b'"') {
            // `r#foo`: a raw identifier, not a raw string. Re-lex the
            // identifier; the consumed hashes can only have been one.
            self.ident_body(line, col);
            return;
        }
        self.bump(); // opening quote
        let start = self.pos;
        loop {
            match self.peek() {
                Some(b'"') => {
                    // A closing quote must be followed by `hashes` hashes.
                    let mut ok = true;
                    for i in 0..hashes {
                        if self.peek_at(1 + i) != Some(b'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                        self.bump();
                        for _ in 0..hashes {
                            self.bump();
                        }
                        self.push(TokKind::Str(text), line, col);
                        return;
                    }
                    self.bump();
                }
                Some(_) => {
                    self.bump();
                }
                None => {
                    self.error(line, col, "unterminated raw string literal");
                    return;
                }
            }
        }
    }

    /// Either a lifetime (`'a`) or a char literal (`'x'`, `'\n'`).
    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        self.bump(); // `'`
        match self.peek() {
            Some(b'\\') => {
                // Escaped char literal.
                self.bump();
                self.bump();
                // Consume up to the closing quote (covers `\u{…}`).
                while let Some(b) = self.peek() {
                    self.bump();
                    if b == b'\'' {
                        break;
                    }
                }
                self.push(TokKind::Char, line, col);
            }
            Some(b) if b == b'_' || b.is_ascii_alphanumeric() => {
                // `'a'` is a char; `'a` followed by anything else is a
                // lifetime (including `'static`).
                if self.peek_at(1) == Some(b'\'') && !ident_continue(self.peek_at(2)) {
                    self.bump();
                    self.bump();
                    self.push(TokKind::Char, line, col);
                } else {
                    let start = self.pos;
                    while self
                        .peek()
                        .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80)
                    {
                        self.bump();
                    }
                    let name = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                    self.push(TokKind::Lifetime(name), line, col);
                }
            }
            Some(_) => {
                // Non-alphanumeric char literal like `' '` or `'+'`.
                self.bump();
                if self.peek() == Some(b'\'') {
                    self.bump();
                }
                self.push(TokKind::Char, line, col);
            }
            None => self.error(line, col, "unterminated character literal"),
        }
    }

    fn number(&mut self, line: u32, col: u32) {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'0')
            && matches!(
                self.peek_at(1),
                Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B')
            )
        {
            self.bump();
            self.bump();
            while self
                .peek()
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
            {
                self.bump();
            }
        } else {
            while self.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                self.bump();
            }
            // A decimal point only belongs to the number when followed by
            // a digit (so `1.max(2)` and `tuple.0.1` lex as punct `.`).
            if self.peek() == Some(b'.') && self.peek_at(1).is_some_and(|b| b.is_ascii_digit()) {
                is_float = true;
                self.bump();
                while self.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                    self.bump();
                }
            }
            // Exponent.
            if matches!(self.peek(), Some(b'e' | b'E'))
                && (self.peek_at(1).is_some_and(|b| b.is_ascii_digit())
                    || (matches!(self.peek_at(1), Some(b'+' | b'-'))
                        && self.peek_at(2).is_some_and(|b| b.is_ascii_digit())))
            {
                is_float = true;
                self.bump();
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.bump();
                }
                while self.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                    self.bump();
                }
            }
            // Suffix (`u64`, `f32`, …). An `f` suffix makes it a float.
            if self.peek().is_some_and(|b| b.is_ascii_alphabetic()) {
                if matches!(self.peek(), Some(b'f' | b'F')) {
                    is_float = true;
                }
                while self
                    .peek()
                    .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
                {
                    self.bump();
                }
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        let kind = if is_float {
            TokKind::Float(text)
        } else {
            TokKind::Int(text)
        };
        self.push(kind, line, col);
    }

    fn ident_like(&mut self, line: u32, col: u32) {
        // String-literal prefixes: r"", b"", br"", c"", cr"", b''.
        let b0 = self.peek();
        let b1 = self.peek_at(1);
        let b2 = self.peek_at(2);
        match (b0, b1, b2) {
            (Some(b'r'), Some(b'"' | b'#'), _) => {
                self.raw_string(line, col);
                return;
            }
            (Some(b'b' | b'c'), Some(b'"'), _) => {
                self.bump();
                self.string(line, col);
                return;
            }
            (Some(b'b' | b'c'), Some(b'r'), Some(b'"' | b'#')) => {
                self.bump();
                self.raw_string(line, col);
                return;
            }
            (Some(b'b'), Some(b'\''), _) => {
                self.bump();
                self.char_or_lifetime(line, col);
                return;
            }
            _ => {}
        }
        self.ident_body(line, col);
    }

    fn ident_body(&mut self, line: u32, col: u32) {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80)
        {
            self.bump();
        }
        let mut name = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        // Normalize raw identifiers (`r#match` arrives here as `r` …
        // actually handled in raw_string fallback; strip a leading `r#`
        // if one slipped through).
        if let Some(stripped) = name.strip_prefix("r#") {
            name = stripped.to_string();
        }
        self.push(TokKind::Ident(name), line, col);
    }
}

fn ident_continue(b: Option<u8>) -> bool {
    b.is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).tokens.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn comments_are_not_tokens() {
        let l = lex("let a = 1; // trailing\n/* block\nspanning */ let b = 2;");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].first_line, 1);
        assert_eq!(l.comments[1].first_line, 2);
        assert_eq!(l.comments[1].last_line, 3);
        assert!(l
            .tokens
            .iter()
            .all(|t| !matches!(&t.kind, TokKind::Ident(s) if s == "block")));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(l.comments.len(), 1);
        assert!(l.tokens[0].is_ident("fn"));
        assert!(l.errors.is_empty());
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "Instant::now() inside a string";"#);
        assert!(toks
            .iter()
            .all(|k| !matches!(k, TokKind::Ident(s) if s == "Instant")));
        assert!(toks
            .iter()
            .any(|k| matches!(k, TokKind::Str(s) if s.contains("Instant"))));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let l = lex(r###"let s = r#"quote " inside"#; let t = 1;"###);
        assert!(l.errors.is_empty());
        assert!(l
            .tokens
            .iter()
            .any(|t| matches!(&t.kind, TokKind::Str(s) if s.contains("quote"))));
        assert!(l.tokens.iter().any(|t| t.is_ident("t")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let s = 'static_name; }");
        assert!(toks
            .iter()
            .any(|k| matches!(k, TokKind::Lifetime(s) if s == "a")));
        assert!(toks.iter().any(|k| matches!(k, TokKind::Char)));
        assert!(toks
            .iter()
            .any(|k| matches!(k, TokKind::Lifetime(s) if s == "static_name")));
    }

    #[test]
    fn numbers_and_method_calls_on_literals() {
        let toks = kinds("let a = 1.max(2); let b = 1.5e-3; let c = 0xFFu64; let d = 2f64;");
        assert!(toks
            .iter()
            .any(|k| matches!(k, TokKind::Int(s) if s == "1")));
        assert!(toks
            .iter()
            .any(|k| matches!(k, TokKind::Float(s) if s == "1.5e-3")));
        assert!(toks
            .iter()
            .any(|k| matches!(k, TokKind::Int(s) if s == "0xFFu64")));
        assert!(toks
            .iter()
            .any(|k| matches!(k, TokKind::Float(s) if s == "2f64")));
    }

    #[test]
    fn spans_are_one_based_and_accurate() {
        let l = lex("fn main() {\n    let x = 1;\n}");
        let x = l.tokens.iter().find(|t| t.is_ident("x")).unwrap();
        assert_eq!((x.line, x.col), (2, 9));
    }

    #[test]
    fn unterminated_string_is_an_error_not_a_hang() {
        let l = lex("let s = \"oops");
        assert_eq!(l.errors.len(), 1);
    }
}
