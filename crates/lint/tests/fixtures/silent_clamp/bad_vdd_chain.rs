// gd-lint-fixture: path=crates/power/src/fixture.rs
// The clamp is just as silent at the end of a longer expression chain,
// and on the voltage rail.

pub struct Rails {
    pub vdd: f64,
    pub vddq_offset: f64,
}

pub fn interface_power_w(r: &Rails, current_ma: f64) -> f64 {
    ((r.vdd - r.vddq_offset) * current_ma / 1000.0).max(0.0) //~ silent-clamp
}
