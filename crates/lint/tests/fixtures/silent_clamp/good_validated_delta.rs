// gd-lint-fixture: path=crates/power/src/fixture.rs
// The sanctioned pattern: reject inconsistent parameters up front, then
// compute plain deltas with no use-site clamp.

pub struct Idd {
    pub idd3n: f64,
    pub idd4r: f64,
}

impl Idd {
    pub fn validate(&self) -> Result<(), String> {
        if self.idd4r < self.idd3n {
            return Err("idd4r below idd3n".to_string());
        }
        Ok(())
    }
}

pub fn read_current_ma(idd: &Idd) -> f64 {
    // No clamp: `validate` rejected idd4r < idd3n at construction.
    idd.idd4r - idd.idd3n
}
