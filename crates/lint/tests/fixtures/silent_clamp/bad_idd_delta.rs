// gd-lint-fixture: path=crates/power/src/fixture.rs
// Clamping a negative IDD delta to zero hides an inconsistent datasheet
// parameter set behind a silent zero-energy term.

pub struct Idd {
    pub idd0: f64,
    pub idd3n: f64,
    pub idd4r: f64,
}

pub fn read_current_ma(idd: &Idd) -> f64 {
    (idd.idd4r - idd.idd3n).max(0.0) //~ silent-clamp
}

pub fn act_current_ma(idd: &Idd) -> f64 {
    let delta = idd.idd0 - idd.idd3n;
    delta.max(0.0) //~ silent-clamp
}
