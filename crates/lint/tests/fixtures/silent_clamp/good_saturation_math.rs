// gd-lint-fixture: path=crates/fleet/src/fixture.rs
// Saturation arithmetic on unit-less fractions and durations is
// legitimate: the rule only fires on rail-current receivers.

pub fn headroom(used_fraction: f64) -> f64 {
    (1.0 - used_fraction).max(0.0)
}

pub fn overhead_fraction(overhead_s: f64, runtime_s: f64) -> f64 {
    (overhead_s / runtime_s).max(0.0)
}

pub struct Idd {
    pub idd4r: f64,
    pub idd3n: f64,
}

pub fn allowed_clamp(idd: &Idd) -> f64 {
    // A deliberately wanted clamp documents itself with an allow.
    (idd.idd4r - idd.idd3n).max(0.0) // gd-lint: allow(silent-clamp)
}
