// gd-lint-fixture: path=crates/core/src/fixture.rs
// Named constants and small stepping literals stay legal.

const PS_PER_US: u64 = 1_000_000;

pub fn to_window_end(start_ps: u64) -> u64 {
    start_ps + PS_PER_US
}

pub fn next_cycle(cycles: u64) -> u64 {
    cycles + 1
}

pub fn page_count(bytes: u64) -> u64 {
    // No unit-carrying name involved: plain size arithmetic.
    bytes / 4096 + 1000
}
