// gd-lint-fixture: path=crates/dram/src/fixture.rs
// Raw casts of unit-carrying values must go through gd-types newtypes.
// Tilde markers name the rule the harness expects on each flagged line.

pub struct Stats {
    pub cycles: u64,
    pub total_energy_pj: u64,
}

pub fn throughput(s: &Stats, requests: u64) -> f64 {
    requests as f64 / s.cycles as f64 //~ unit-safety
}

pub fn energy_j(s: &Stats) -> f64 {
    s.total_energy_pj as f64 * 1e-12 //~ unit-safety
}
