// gd-lint-fixture: path=crates/core/src/fixture.rs
// A bare magnitude constant next to a unit-carrying name is almost
// always an inline unit-conversion factor.

pub fn to_window_end(start_ps: u64) -> u64 {
    start_ps + 1_000_000 //~ unit-safety
}

pub fn scaled(total_energy_pj: u64) -> u64 {
    total_energy_pj * 1000 //~ unit-safety
}
