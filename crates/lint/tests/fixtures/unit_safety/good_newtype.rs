// gd-lint-fixture: path=crates/dram/src/fixture.rs
// Conversions through the gd-types newtype methods are the sanctioned
// path; casts of unit-less counts are fine too.

use gd_types::Cycles;

pub struct Stats {
    pub cycles: Cycles,
    pub reads: u64,
    pub writes: u64,
}

pub fn throughput(s: &Stats) -> f64 {
    (s.reads + s.writes) as f64 / s.cycles.as_f64()
}

pub fn mean_per_group(samples: &[u64], group_cycles: &[u64]) -> f64 {
    // `.len()` neutralizes the unit: this is a count cast, not a unit cast.
    samples.iter().sum::<u64>() as f64 / group_cycles.len() as f64
}
