// gd-lint-fixture: path=crates/dram/src/fixture.rs
// Arithmetic inside an index expression is the off-by-one classic.

pub fn fourth_from_end(acts: &[u64]) -> u64 {
    acts[acts.len() - 4] //~ panic-path
}

pub fn flat_bank(banks: &[u64], rank: usize, per_rank: usize, bank: usize) -> u64 {
    banks[rank * per_rank + bank] //~ panic-path
}
