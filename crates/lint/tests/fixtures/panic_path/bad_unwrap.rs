// gd-lint-fixture: path=crates/mmsim/src/fixture.rs
// Anonymous panics in a hot simulation crate.

use std::collections::BTreeMap;

pub fn lookup(map: &BTreeMap<u32, u64>, k: u32) -> u64 {
    *map.get(&k).unwrap() //~ panic-path
}

pub fn lookup_unnamed(map: &BTreeMap<u32, u64>, k: u32) -> u64 {
    *map.get(&k).expect("") //~ panic-path
}
