// gd-lint-fixture: path=crates/dram/src/fixture.rs
// Plain identifier/deref indexing and checked access stay legal; so do
// computed indices behind `.get()`.

pub fn plain(v: &[u64], i: usize) -> u64 {
    v[i]
}

pub fn deref_index(v: &[u64], idx: &[usize]) -> u64 {
    let mut acc = 0;
    for i in idx {
        acc += v[*i];
    }
    acc
}

pub fn checked(v: &[u64], i: usize) -> Option<u64> {
    v.get(i + 1).copied()
}

pub fn modulo(v: &[u64], h: usize) -> u64 {
    v[h % v.len()]
}
