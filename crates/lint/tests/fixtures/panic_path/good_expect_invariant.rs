// gd-lint-fixture: path=crates/mmsim/src/fixture.rs
// Panics naming the violated invariant, error returns, and test code
// are all fine.

use std::collections::BTreeMap;

pub fn lookup(map: &BTreeMap<u32, u64>, k: u32) -> u64 {
    *map.get(&k).expect("invariant: caller registered the key")
}

pub fn lookup_or(map: &BTreeMap<u32, u64>, k: u32) -> Option<u64> {
    map.get(&k).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_fine_in_tests() {
        let map = BTreeMap::new();
        assert_eq!(lookup_or(&map, 1).unwrap_or(0), 0);
        let _ = map.get(&1).unwrap();
    }
}
