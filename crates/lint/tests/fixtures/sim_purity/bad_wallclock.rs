// gd-lint-fixture: path=crates/baselines/src/fixture.rs
// Wall-clock reads break replayability everywhere, even behind cfg.

use std::time::{Instant, SystemTime};

pub fn stamp() -> u128 {
    let t0 = Instant::now(); //~ sim-purity
    t0.elapsed().as_nanos()
}

#[cfg(feature = "wallclock")]
pub fn epoch_ms() -> u128 {
    SystemTime::now() //~ sim-purity
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}
