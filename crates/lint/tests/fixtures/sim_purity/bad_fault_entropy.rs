// gd-lint-fixture: path=crates/faults/src/fixture.rs
// A fault plan built from ambient entropy breaks the gd-faults
// determinism contract (per-site streams must derive from the run seed).

pub fn build_random_plan(rate: f64) -> FaultInjector {
    let seed = rand::random(); //~ sim-purity
    FaultPlan::uniform(rate).build(seed)
}

pub fn jittered_backoff(base: SimTime) -> SimTime {
    let mut rng = rand::thread_rng(); //~ sim-purity
    base * (1 + rng.next_u64() % 4)
}

pub fn wallclock_quarantine() -> u128 {
    let t0 = std::time::Instant::now(); //~ sim-purity
    t0.elapsed().as_nanos()
}
