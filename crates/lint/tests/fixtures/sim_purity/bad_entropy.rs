// gd-lint-fixture: path=crates/workloads/src/fixture.rs
// Entropy-seeded RNGs make runs unrepeatable.

pub fn shuffle_seed() -> u64 {
    let mut rng = rand::thread_rng(); //~ sim-purity
    rand::random() //~ sim-purity
}

pub fn from_os_entropy() -> u64 {
    let rng = SmallRng::from_entropy(); //~ sim-purity
    rng.next_u64()
}
