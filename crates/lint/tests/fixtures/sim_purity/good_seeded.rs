// gd-lint-fixture: path=crates/workloads/src/fixture.rs
// Config-seeded deterministic RNG is the sanctioned source of
// randomness; naming a banned function is not calling it.

use gd_types::rng::SplitMix64;

pub fn shuffle(seed: u64, n: usize) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_u64()).collect()
}

pub fn from_entropy_docs() -> &'static str {
    // A function *named* like the hazard is only flagged when called.
    "from_entropy is banned; SplitMix64::new(seed) replaces it"
}
