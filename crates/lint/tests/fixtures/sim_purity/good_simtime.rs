// gd-lint-fixture: path=crates/baselines/src/fixture.rs
// Simulated time and prose mentions of the hazards are fine: the lexer
// never shows comments or string contents to the lints.

use gd_types::SimTime;

pub fn stamp(now: SimTime) -> u64 {
    // Instant::now() would be a hazard here, but this comment is prose.
    now.0
}

pub fn describe() -> &'static str {
    "uses SimTime, never Instant::now() or SystemTime::now()"
}
