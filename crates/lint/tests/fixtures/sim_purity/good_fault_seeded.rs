// gd-lint-fixture: path=crates/faults/src/fixture.rs
// The deterministic shape: every injector stream derives from the run
// seed and a stable site label; backoff is computed in sim-time.

use gd_types::rng::derive_seed;

pub fn build_plan(rate: f64, seed: u64) -> FaultInjector {
    FaultPlan::uniform(rate).build(derive_seed(seed, "faults.mm"))
}

pub fn per_site_stream(seed: u64, site: FaultSite) -> StdRng {
    StdRng::seed_from_u64(derive_seed(seed, site.label()))
}

pub fn backoff(policy: &RetryPolicy, consecutive: u32) -> SimTime {
    policy.backoff_after(consecutive)
}
