// gd-lint-fixture: path=crates/bench/src/fixture.rs
// Sorting (or any ordered container) before accumulating is the fix.

use std::collections::HashMap;

pub fn mean_power(readings_w: &HashMap<u32, f64>) -> f64 {
    let mut vals: Vec<(u32, f64)> = readings_w.iter().map(|(k, v)| (*k, *v)).collect();
    vals.sort_by_key(|(k, _)| *k);
    let mut acc = 0.0;
    for (_, v) in &vals {
        acc += v;
    }
    acc / vals.len() as f64
}

pub fn count_nonzero(readings_w: &HashMap<u32, f64>) -> u64 {
    let mut n = 0u64;
    for v in readings_w.values() {
        if *v != 0.0 {
            n += 1;
        }
    }
    n
}
