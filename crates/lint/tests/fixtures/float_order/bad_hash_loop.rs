// gd-lint-fixture: path=crates/bench/src/fixture.rs
// The loop form of hash-order float accumulation.

use std::collections::HashMap;

pub fn mean_power(readings_w: &HashMap<u32, f64>) -> f64 {
    let mut acc = 0.0;
    for v in readings_w.values() {
        acc += *v; //~ float-order
    }
    acc / readings_w.len() as f64
}
