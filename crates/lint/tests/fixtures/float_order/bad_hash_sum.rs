// gd-lint-fixture: path=crates/obs/src/fixture.rs
// Float accumulation over hash-order iteration drifts run to run.

use std::collections::HashMap;

pub struct Telemetry {
    energy_j: HashMap<u32, f64>,
}

impl Telemetry {
    pub fn total_energy(&self) -> f64 {
        self.energy_j.values().sum::<f64>() //~ float-order
    }

    pub fn weighted(&self) -> f64 {
        self.energy_j.values().fold(0.0, |acc, v| acc + v * 0.5) //~ float-order
    }
}
