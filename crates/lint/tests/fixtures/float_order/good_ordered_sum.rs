// gd-lint-fixture: path=crates/obs/src/fixture.rs
// Ordered sources (BTreeMap, slices) and integer accumulation over hash
// maps are both order-safe.

use std::collections::{BTreeMap, HashMap};

pub struct Telemetry {
    energy_j: BTreeMap<u32, f64>,
    hits: HashMap<u32, u64>,
}

impl Telemetry {
    pub fn total_energy(&self) -> f64 {
        // BTreeMap iterates in key order: deterministic.
        self.energy_j.values().sum::<f64>()
    }

    pub fn total_hits(&self) -> u64 {
        // Integer addition is associative; hash order cannot matter.
        self.hits.values().sum::<u64>()
    }
}

pub fn slice_sum(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>()
}
