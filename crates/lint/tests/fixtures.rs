//! Fixture suite for the gd-lint rule catalog.
//!
//! Every file under `tests/fixtures/<rule>/` is a known-bad or
//! known-good snippet:
//!
//! - `bad_*.rs` carries `//~ <rule>` markers on each line where a
//!   finding is expected; the engine must report *exactly* those
//!   (line, rule) pairs, no more, no fewer.
//! - `good_*.rs` must lint completely clean.
//!
//! Fixtures carry a `// gd-lint-fixture: path=…` header remapping them
//! into the crate whose scoping they exercise (the corpus itself is
//! excluded from workspace walks).

use gd_lint::lint_source;
use std::fs;
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_files() -> Vec<PathBuf> {
    let mut out = Vec::new();
    for rule_dir in fs::read_dir(fixture_root())
        .expect("fixture corpus exists")
        .flatten()
    {
        if !rule_dir.path().is_dir() {
            continue;
        }
        for f in fs::read_dir(rule_dir.path())
            .expect("rule dir readable")
            .flatten()
        {
            if f.path().extension().is_some_and(|e| e == "rs") {
                out.push(f.path());
            }
        }
    }
    out.sort();
    out
}

/// `(line, rule)` pairs declared by `//~ <rule>` markers.
fn expected_markers(text: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if let Some(pos) = line.find("//~") {
            let rule = line[pos + 3..].trim().to_string();
            assert!(!rule.is_empty(), "empty //~ marker on line {}", idx + 1);
            out.push((idx as u32 + 1, rule));
        }
    }
    out
}

#[test]
fn corpus_has_at_least_two_pairs_per_lint() {
    let files = fixture_files();
    for rule in [
        "unit_safety",
        "panic_path",
        "float_order",
        "sim_purity",
        "silent_clamp",
    ] {
        let bad = files
            .iter()
            .filter(|f| {
                f.parent().is_some_and(|p| p.ends_with(rule))
                    && f.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("bad_"))
            })
            .count();
        let good = files
            .iter()
            .filter(|f| {
                f.parent().is_some_and(|p| p.ends_with(rule))
                    && f.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("good_"))
            })
            .count();
        assert!(bad >= 2, "lint {rule} needs >= 2 bad fixtures, has {bad}");
        assert!(
            good >= 2,
            "lint {rule} needs >= 2 good fixtures, has {good}"
        );
    }
}

#[test]
fn bad_fixtures_produce_exactly_the_marked_findings() {
    for file in fixture_files() {
        let name = file.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !name.starts_with("bad_") {
            continue;
        }
        let text = fs::read_to_string(&file).expect("fixture readable");
        let mut expected = expected_markers(&text);
        assert!(
            !expected.is_empty(),
            "{} is a bad fixture with no //~ markers",
            file.display()
        );
        let mut got: Vec<(u32, String)> = lint_source(&file, &text)
            .into_iter()
            .map(|f| (f.line, f.rule))
            .collect();
        expected.sort();
        got.sort();
        assert_eq!(
            got,
            expected,
            "{}: findings do not match //~ markers",
            file.display()
        );
    }
}

#[test]
fn good_fixtures_are_clean() {
    for file in fixture_files() {
        let name = file.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !name.starts_with("good_") {
            continue;
        }
        let text = fs::read_to_string(&file).expect("fixture readable");
        let findings = lint_source(&file, &text);
        assert!(
            findings.is_empty(),
            "{}: expected clean, got:\n{}",
            file.display(),
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn every_fixture_declares_a_scoped_path() {
    for file in fixture_files() {
        let text = fs::read_to_string(&file).expect("fixture readable");
        assert!(
            text.lines()
                .next()
                .is_some_and(|l| l.contains("gd-lint-fixture: path=")),
            "{}: first line must carry a gd-lint-fixture path header",
            file.display()
        );
    }
}
