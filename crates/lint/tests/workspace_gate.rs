//! Gate tests: the workspace itself must be gd-lint-clean at HEAD, and
//! the sim-purity catalog must stay in lockstep with clippy.toml's
//! `disallowed-methods` so the two gates cannot drift apart silently.

use gd_lint::{lint_workspace, lints::sim_purity, workspace_root};
use std::fs;

#[test]
fn workspace_is_gd_lint_clean_at_head() {
    let report = lint_workspace(&workspace_root());
    assert!(
        report.files_scanned > 50,
        "workspace walk looks broken: only {} files scanned",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "gd-lint findings at HEAD (fix or `// gd-lint: allow(...)` with a reason):\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Every method clippy is told to reject must be covered by gd-lint's
/// sim-purity rule (gd-lint also runs on cfg'd-out code clippy never
/// sees), and every std-path sim-purity rule must be in clippy.toml
/// (clippy enforces it on type-resolved paths, immune to renames).
#[test]
fn sim_purity_and_clippy_toml_cover_each_other() {
    let toml = fs::read_to_string(workspace_root().join("clippy.toml"))
        .expect("clippy.toml at the workspace root");
    let clippy_paths: Vec<String> = toml
        .lines()
        .filter_map(|l| {
            let (_, rest) = l.split_once("path = \"")?;
            let (path, _) = rest.split_once('"')?;
            Some(path.to_string())
        })
        .collect();
    assert!(
        !clippy_paths.is_empty(),
        "clippy.toml lost its disallowed-methods list"
    );
    for path in &clippy_paths {
        assert!(
            sim_purity::covers_path(path),
            "clippy.toml disallows `{path}` but gd-lint sim-purity does not cover it"
        );
    }
    // Reverse direction: every typed std path gd-lint bans must appear
    // in clippy.toml. Entries whose first segment is lowercase name
    // crates the workspace does not depend on (e.g. `rand`), which
    // clippy could never resolve — those are gd-lint-only.
    for (seg0, seg1, _) in sim_purity::BANNED_PATHS {
        if seg0.chars().next().is_some_and(char::is_uppercase) {
            assert!(
                clippy_paths
                    .iter()
                    .any(|p| p.ends_with(&format!("{seg0}::{seg1}"))),
                "gd-lint bans `{seg0}::{seg1}` but clippy.toml does not list it"
            );
        }
    }
}
