//! Strongly-typed identifiers for the DRAM hierarchy.
//!
//! Using newtypes instead of bare `usize` prevents the classic
//! rank-where-a-bank-was-expected bug when plumbing decoded addresses through
//! the controller, device model, and power model.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Creates a new identifier from a raw index.
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the raw index.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }

        impl From<$name> for u32 {
            fn from(v: $name) -> u32 {
                v.0
            }
        }
    };
}

id_newtype!(
    /// A memory channel (independent command/address/data bus).
    Channel
);
id_newtype!(
    /// A rank within a channel: the set of DRAM devices that respond to a
    /// chip select in lock-step.
    Rank
);
id_newtype!(
    /// A DDR4 bank group within a device.
    BankGroup
);
id_newtype!(
    /// A bank within a bank group (the unit that owns a row buffer).
    Bank
);
id_newtype!(
    /// A sub-array within a bank: the unit selected by the global row
    /// decoder, comprising multiple MATs. GreenDIMM's power-down unit.
    SubArray
);
id_newtype!(
    /// A row within a sub-array (selected by the local row decoder).
    Row
);
id_newtype!(
    /// A sub-array *group*: all sub-arrays with the same sub-array index
    /// across every channel, rank, and bank. The paper's minimum unit of
    /// DRAM power management (always 1/64 of total capacity with 64
    /// sub-arrays per bank).
    SubArrayGroup
);

/// A fully decoded DRAM coordinate for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramCoord {
    /// Channel index.
    pub channel: Channel,
    /// Rank index within the channel.
    pub rank: Rank,
    /// Bank group index within the rank.
    pub bank_group: BankGroup,
    /// Bank index within the bank group.
    pub bank: Bank,
    /// Sub-array index within the bank (top bits of the row address).
    pub subarray: SubArray,
    /// Row index within the sub-array (bottom bits of the row address).
    pub row: Row,
    /// Column index within the row.
    pub column: u32,
}

impl DramCoord {
    /// The flat bank index within a rank, combining bank group and bank.
    pub fn flat_bank(&self, banks_per_group: u32) -> usize {
        (self.bank_group.0 * banks_per_group + self.bank.0) as usize
    }

    /// The full row address as seen by the device: sub-array bits above the
    /// local-row bits.
    pub fn full_row(&self, rows_per_subarray: u32) -> u32 {
        self.subarray.0 * rows_per_subarray + self.row.0
    }

    /// The sub-array group this coordinate belongs to (same as the
    /// sub-array index, by construction of the grouping).
    pub fn subarray_group(&self) -> SubArrayGroup {
        SubArrayGroup(self.subarray.0)
    }
}

impl fmt::Display for DramCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{}/r{}/bg{}/b{}/sa{}/row{}/col{}",
            self.channel.0,
            self.rank.0,
            self.bank_group.0,
            self.bank.0,
            self.subarray.0,
            self.row.0,
            self.column
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newtype_roundtrip() {
        let c = Channel::new(3);
        assert_eq!(c.index(), 3);
        assert_eq!(u32::from(c), 3);
        assert_eq!(Channel::from(3u32), c);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Channel::new(1).to_string(), "Channel1");
        assert_eq!(SubArrayGroup::new(63).to_string(), "SubArrayGroup63");
    }

    #[test]
    fn flat_bank_combines_group_and_bank() {
        let coord = DramCoord {
            channel: Channel::new(0),
            rank: Rank::new(0),
            bank_group: BankGroup::new(2),
            bank: Bank::new(3),
            subarray: SubArray::new(5),
            row: Row::new(100),
            column: 7,
        };
        assert_eq!(coord.flat_bank(4), 11);
        assert_eq!(coord.full_row(512), 5 * 512 + 100);
        assert_eq!(coord.subarray_group(), SubArrayGroup::new(5));
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(Rank::new(0) < Rank::new(1));
        assert!(SubArray::new(10) > SubArray::new(2));
    }
}
