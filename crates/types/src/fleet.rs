//! Fleet-scale simulation configuration and accounting.
//!
//! The paper motivates GreenDIMM with *data-center* memory utilization
//! (§1: 40–60 % average across fleets), but the co-simulation crates model
//! one host. `gd-fleet` lifts them to a cluster: N hosts fed from one
//! synthesized Azure arrival stream through a placement/consolidation
//! scheduler. The plain-data configuration and the conservation-checked
//! accounting live here so every layer (scheduler, verifier, bench
//! binaries) shares one vocabulary without depending on the fleet crate.

/// Cluster placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FleetPlacement {
    /// First host (lowest index) with room for the VM.
    FirstFit,
    /// Host with the least memory headroom left after placing the VM
    /// (bin-packing; ties break toward the lowest index).
    #[default]
    BestFit,
    /// Best-fit among the hosts already running the most same-OS VMs, so
    /// KSM's OS-image sharing gets the densest co-location; ties break
    /// toward the tightest fit, then the lowest index.
    KsmAware,
}

impl FleetPlacement {
    /// Short policy name used in labels and provenance descriptions.
    pub fn name(self) -> &'static str {
        match self {
            FleetPlacement::FirstFit => "first-fit",
            FleetPlacement::BestFit => "best-fit",
            FleetPlacement::KsmAware => "ksm-aware",
        }
    }
}

/// Configuration of one fleet run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Number of hosts.
    pub hosts: usize,
    /// Physical cores per host (vCPU consolidation cap is 2× this).
    pub host_cores: u32,
    /// Installed memory per host in GiB.
    pub host_capacity_gb: u64,
    /// Memory block size in GiB (paper: 1 GB for the VM experiments).
    pub block_gb: u64,
    /// Trace duration in seconds.
    pub duration_s: u64,
    /// Scheduler period in seconds (paper: 5 min).
    pub schedule_period_s: u64,
    /// Mean VM arrivals per scheduler tick *per host* at the diurnal
    /// baseline (the cluster arrival intensity is this times `hosts`).
    pub arrivals_per_tick_per_host: f64,
    /// Consolidation aggressiveness: the scheduler packs a host's memory
    /// only up to this fraction of installed capacity (1.0 = pack to the
    /// physical limit).
    pub max_util: f64,
    /// Scheduler ticks a queued VM waits before abandoning (its request
    /// goes to another cluster).
    pub queue_patience_ticks: u32,
    /// Placement policy.
    pub placement: FleetPlacement,
    /// Run each host's KSM daemon.
    pub ksm: bool,
    /// Run each host's GreenDIMM daemon (off = conventional kernel).
    pub greendimm: bool,
    /// Exact co-sim host stride for the sampled epoch-replay engine: hosts
    /// whose index is a multiple of this are simulated exactly; the rest
    /// are replayed analytically from the exact sample. Ignored by the
    /// exact engines. Must be ≥ 1.
    pub replay_stride: usize,
    /// Experiment seed (per-host seeds derive from it by host index).
    pub seed: u64,
}

impl FleetConfig {
    /// The paper-scale fleet: 1000 hosts of the Fig. 12/13 platform
    /// (16 cores, 256 GB, 1 GB blocks) over 24 hours.
    pub fn paper_1k() -> Self {
        FleetConfig {
            hosts: 1000,
            host_cores: 16,
            host_capacity_gb: 256,
            block_gb: 1,
            duration_s: 86_400,
            schedule_period_s: 300,
            arrivals_per_tick_per_host: 0.8,
            max_util: 0.80,
            queue_patience_ticks: 12,
            placement: FleetPlacement::BestFit,
            ksm: false,
            greendimm: true,
            replay_stride: 16,
            seed: 42,
        }
    }

    /// A small fleet for tests: 8 hosts over 2 hours.
    pub fn small_test() -> Self {
        FleetConfig {
            hosts: 8,
            duration_s: 7_200,
            ..Self::paper_1k()
        }
    }

    /// Number of scheduler ticks in the run (the tick at t = 0 included).
    pub fn ticks(&self) -> u64 {
        self.duration_s / self.schedule_period_s
    }
}

/// VM accounting over one fleet run.
///
/// Conservation: every arrival is in exactly one terminal bucket —
/// `arrivals == running_at_end + queued_at_end + retired + abandoned` —
/// and every placement either retired or is still running:
/// `placed == running_at_end + retired`. `gd-verify`'s fleet checker
/// enforces both at every scheduler tick.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// VMs that arrived at the cluster.
    pub arrivals: u64,
    /// VMs placed onto a host.
    pub placed: u64,
    /// Placed VMs whose lifetime expired (stop event emitted).
    pub retired: u64,
    /// Queued VMs that gave up after `queue_patience_ticks`.
    pub abandoned: u64,
    /// VMs still running when the trace ended.
    pub running_at_end: u64,
    /// VMs still queued when the trace ended.
    pub queued_at_end: u64,
    /// Most VMs running anywhere in the cluster at once.
    pub peak_running: u64,
    /// Most hosts holding at least one VM at once.
    pub peak_hosts_used: usize,
}

impl FleetStats {
    /// True when the VM-conservation identities hold.
    pub fn conserved(&self) -> bool {
        self.arrivals == self.running_at_end + self.queued_at_end + self.retired + self.abandoned
            && self.placed == self.running_at_end + self.retired
    }

    /// Fraction of arrivals the cluster eventually placed.
    pub fn placement_rate(&self) -> f64 {
        if self.arrivals == 0 {
            1.0
        } else {
            self.placed as f64 / self.arrivals as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fleet_shape() {
        let cfg = FleetConfig::paper_1k();
        assert_eq!(cfg.hosts, 1000);
        assert_eq!(cfg.ticks(), 288);
        assert!(cfg.replay_stride >= 1);
    }

    #[test]
    fn conservation_identity() {
        let s = FleetStats {
            arrivals: 10,
            placed: 7,
            retired: 4,
            abandoned: 2,
            running_at_end: 3,
            queued_at_end: 1,
            ..FleetStats::default()
        };
        assert!(s.conserved());
        assert!((s.placement_rate() - 0.7).abs() < 1e-12);
        let broken = FleetStats { placed: 8, ..s };
        assert!(!broken.conserved());
    }

    #[test]
    fn placement_names() {
        assert_eq!(FleetPlacement::FirstFit.name(), "first-fit");
        assert_eq!(FleetPlacement::BestFit.name(), "best-fit");
        assert_eq!(FleetPlacement::KsmAware.name(), "ksm-aware");
        assert_eq!(FleetPlacement::default(), FleetPlacement::BestFit);
    }
}
