//! Deterministic RNG: an in-tree xoshiro256++ generator plus seed-derivation
//! helpers.
//!
//! Every stochastic component in the workspace takes an explicit seed so that
//! experiment tables are reproducible bit-for-bit. This module centralizes
//! both the generator implementation and seed derivation so that
//! sub-component streams are independent even when built from one
//! experiment-level seed — and so that no component can reach for an
//! entropy-seeded generator (`detlint` rejects `from_entropy`/`thread_rng`
//! at the source level).

use std::ops::Range;

/// A deterministic pseudo-random generator (xoshiro256++, seeded through a
/// splitmix64 expansion). The name mirrors the `rand` crate's seedable
/// standard generator, but this implementation is self-contained and its
/// stream is stable across toolchain upgrades — a requirement for
/// reproducible experiment tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl StdRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro256++ must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        StdRng { s }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.next_f64() < p
    }

    /// A uniform sample from a half-open range (integer or `f64`).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// Ranges [`StdRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = rng.next_u64() % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Creates a deterministic RNG from a seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a component label.
///
/// Component labels keep streams independent: the workload generator and the
/// VM scheduler seeded from the same experiment seed must not observe
/// correlated randomness. Uses an FNV-1a fold of the label into the seed.
pub fn derive_seed(parent: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET ^ parent.rotate_left(17);
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Final avalanche (splitmix64 finalizer) so nearby parents diverge.
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Creates a deterministic child RNG for a named component.
pub fn component_rng(parent_seed: u64, label: &str) -> StdRng {
    rng_from_seed(derive_seed(parent_seed, label))
}

/// Derives the seed for one point of a parameter sweep.
///
/// The sweep harness (`gd_bench::sweep`) hands every point a seed that is a
/// pure function of the experiment seed and the point's *index* — never of
/// the worker thread that picked the point up — so fanning a sweep across a
/// thread pool cannot change any result. Routing the index through
/// [`derive_seed`]'s label fold also decorrelates adjacent points.
pub fn sweep_point_seed(parent: u64, index: usize) -> u64 {
    let mut buf = [0u8; 24];
    buf[..8].copy_from_slice(b"sweep-pt");
    buf[8..16].copy_from_slice(&(index as u64).to_le_bytes());
    buf[16..].copy_from_slice(&(index as u64).rotate_left(29).to_le_bytes());
    // The label bytes need not be UTF-8-meaningful; fold them directly.
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET ^ parent.rotate_left(17);
    for b in buf {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(7);
        let mut b = rng_from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn labels_produce_distinct_streams() {
        let s1 = derive_seed(42, "workload");
        let s2 = derive_seed(42, "scheduler");
        assert_ne!(s1, s2);
        let mut a = rng_from_seed(s1);
        let mut b = rng_from_seed(s2);
        // Statistically these must differ immediately.
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn derive_is_deterministic() {
        assert_eq!(derive_seed(1, "x"), derive_seed(1, "x"));
        assert_ne!(derive_seed(1, "x"), derive_seed(2, "x"));
    }

    #[test]
    fn sweep_point_seeds_are_stable_and_distinct() {
        assert_eq!(sweep_point_seed(7, 3), sweep_point_seed(7, 3));
        let seeds: Vec<u64> = (0..64).map(|i| sweep_point_seed(7, i)).collect();
        for (i, a) in seeds.iter().enumerate() {
            for b in &seeds[i + 1..] {
                assert_ne!(a, b, "adjacent sweep points must not share seeds");
            }
        }
        assert_ne!(sweep_point_seed(7, 0), sweep_point_seed(8, 0));
    }

    #[test]
    fn component_rng_reproducible() {
        let mut a = component_rng(9, "azure");
        let mut b = component_rng(9, "azure");
        assert_eq!(a.next_f64(), b.next_f64());
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = rng_from_seed(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = rng_from_seed(11);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = rng_from_seed(5);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "observed {frac}");
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
    }

    #[test]
    fn distribution_covers_range_uniformly() {
        let mut r = rng_from_seed(17);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }
}
