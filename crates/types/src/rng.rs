//! Deterministic RNG helpers.
//!
//! Every stochastic component in the workspace takes an explicit seed so that
//! experiment tables are reproducible bit-for-bit. This module centralizes
//! seed derivation so that sub-component streams are independent even when
//! built from one experiment-level seed.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a deterministic RNG from a seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a component label.
///
/// Component labels keep streams independent: the workload generator and the
/// VM scheduler seeded from the same experiment seed must not observe
/// correlated randomness. Uses an FNV-1a fold of the label into the seed.
pub fn derive_seed(parent: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET ^ parent.rotate_left(17);
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Final avalanche (splitmix64 finalizer) so nearby parents diverge.
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Creates a deterministic child RNG for a named component.
pub fn component_rng(parent_seed: u64, label: &str) -> StdRng {
    rng_from_seed(derive_seed(parent_seed, label))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(7);
        let mut b = rng_from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn labels_produce_distinct_streams() {
        let s1 = derive_seed(42, "workload");
        let s2 = derive_seed(42, "scheduler");
        assert_ne!(s1, s2);
        let mut a = rng_from_seed(s1);
        let mut b = rng_from_seed(s2);
        // Statistically these must differ immediately.
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn derive_is_deterministic() {
        assert_eq!(derive_seed(1, "x"), derive_seed(1, "x"));
        assert_ne!(derive_seed(1, "x"), derive_seed(2, "x"));
    }

    #[test]
    fn component_rng_reproducible() {
        let mut a = component_rng(9, "azure");
        let mut b = component_rng(9, "azure");
        assert_eq!(a.gen::<f64>(), b.gen::<f64>());
    }
}
