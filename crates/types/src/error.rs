//! Shared error types.

use std::error::Error;
use std::fmt;

/// Errors produced across the GreenDIMM workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GdError {
    /// A configuration value is inconsistent or out of range.
    InvalidConfig(String),
    /// A physical address fell outside the configured capacity.
    AddressOutOfRange {
        /// The offending address.
        addr: u64,
        /// The configured capacity in bytes.
        capacity: u64,
    },
    /// A memory-management operation referenced an unknown entity.
    NotFound(String),
    /// Memory off-lining failed because a page in the block is unmovable
    /// (mirrors the kernel's `-EBUSY`).
    OfflineBusy,
    /// Memory off-lining failed transiently: migration could not complete
    /// after the retry budget (mirrors the kernel's `-EAGAIN`).
    OfflineAgain,
    /// The requested operation conflicts with current state (e.g. on-lining
    /// a block that is already online).
    InvalidState(String),
    /// There is not enough free memory to satisfy an allocation.
    OutOfMemory {
        /// Pages requested.
        requested_pages: u64,
        /// Pages currently free.
        free_pages: u64,
    },
}

impl fmt::Display for GdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GdError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            GdError::AddressOutOfRange { addr, capacity } => {
                write!(
                    f,
                    "address {addr:#x} out of range for capacity {capacity:#x}"
                )
            }
            GdError::NotFound(what) => write!(f, "not found: {what}"),
            GdError::OfflineBusy => write!(f, "off-lining failed: unmovable page in block (EBUSY)"),
            GdError::OfflineAgain => {
                write!(f, "off-lining failed: transient migration failure (EAGAIN)")
            }
            GdError::InvalidState(msg) => write!(f, "invalid state: {msg}"),
            GdError::OutOfMemory {
                requested_pages,
                free_pages,
            } => write!(
                f,
                "out of memory: requested {requested_pages} pages, {free_pages} free"
            ),
        }
    }
}

impl Error for GdError {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, GdError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            GdError::OfflineBusy.to_string(),
            "off-lining failed: unmovable page in block (EBUSY)"
        );
        let e = GdError::AddressOutOfRange {
            addr: 0x1000,
            capacity: 0x800,
        };
        assert!(e.to_string().contains("0x1000"));
    }

    #[test]
    fn is_std_error_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<GdError>();
    }
}
