//! Simulated-time newtypes.
//!
//! The DRAM simulator counts in memory-clock [`Cycles`]; the system-level
//! co-simulation counts in picosecond-resolution [`SimTime`]. Conversions
//! between the two go through the configured clock period so the two engines
//! can exchange timestamps without unit bugs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A count of DRAM clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    pub const fn new(n: u64) -> Self {
        Cycles(n)
    }

    /// Raw cycle count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The cycle count as a float, for rate and energy arithmetic. This
    /// is the audited widening point gd-lint's `unit-safety` rule routes
    /// raw `as f64` casts through.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// The later of two timestamps.
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }

    /// The earlier of two timestamps.
    pub fn min(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.min(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

/// A point in (or duration of) simulated wall-clock time, in picoseconds.
///
/// Picoseconds give headroom: `u64` picoseconds covers ~213 days, far more
/// than the 24-hour VM-trace experiments need, while representing DDR4-2133
/// cycle times (937.5 ps) exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from picoseconds.
    pub const fn from_picos(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Constructs from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Constructs from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000_000)
    }

    /// Constructs from fractional seconds. Truncates below 1 ps.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s * 1e12) as u64)
    }

    /// Picoseconds.
    pub const fn as_picos(self) -> u64 {
        self.0
    }

    /// Nanoseconds (truncating).
    pub const fn as_nanos(self) -> u64 {
        self.0 / 1_000
    }

    /// Microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// The later of two timestamps.
    pub fn max(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.max(rhs.0))
    }

    /// The earlier of two timestamps.
    pub fn min(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.min(rhs.0))
    }

    /// Converts a cycle count at the given clock frequency (MHz) into time.
    pub fn from_cycles(cycles: Cycles, clock_mhz: f64) -> SimTime {
        SimTime::from_secs_f64(cycles.as_u64() as f64 / (clock_mhz * 1e6))
    }

    /// Converts this duration into cycles at the given clock frequency (MHz),
    /// rounding up (a constraint of N ns always costs at least ceil cycles).
    pub fn to_cycles(self, clock_mhz: f64) -> Cycles {
        let cycles = self.as_secs_f64() * clock_mhz * 1e6;
        // Tolerate float slop so an exact multiple of the period does not
        // round up to an extra cycle.
        Cycles((cycles - 1e-6).ceil().max(0.0) as u64)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        SimTime(iter.map(|t| t.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= 1_000_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3}ms", ps as f64 / 1e9)
        } else if ps >= 1_000_000 {
            write!(f, "{:.3}us", ps as f64 / 1e6)
        } else if ps >= 1_000 {
            write!(f, "{:.3}ns", ps as f64 / 1e3)
        } else {
            write!(f, "{ps}ps")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_roundtrip() {
        let t = SimTime::from_millis(1580);
        assert_eq!(t.as_micros(), 1_580_000);
        assert_eq!(t.as_millis(), 1580);
        assert_eq!(t.as_secs(), 1);
        assert!((t.as_secs_f64() - 1.58).abs() < 1e-12);
    }

    #[test]
    fn cycle_time_conversion_ddr4_2133() {
        // DDR4-2133: 1066.66 MHz clock, period 937.5 ps.
        let one_us = SimTime::from_micros(1);
        let cycles = one_us.to_cycles(1_066.666_666_7);
        assert!((1066..=1067).contains(&cycles.as_u64()));
        let back = SimTime::from_cycles(cycles, 1_066.666_666_7);
        assert!(back.as_nanos() >= 999 && back.as_nanos() <= 1001);
    }

    #[test]
    fn to_cycles_rounds_up() {
        // 1 ns at 1000 MHz is exactly 1 cycle; 1.5 ns must cost 2.
        assert_eq!(SimTime::from_nanos(1).to_cycles(1000.0), Cycles(1));
        assert_eq!(SimTime::from_picos(1_500).to_cycles(1000.0), Cycles(2));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(2);
        let b = SimTime::from_millis(500);
        assert_eq!((a + b).as_millis(), 2500);
        assert_eq!((a - b).as_millis(), 1500);
        assert_eq!((b * 4).as_secs(), 2);
        assert_eq!((a / 4).as_millis(), 500);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    fn display_chooses_unit() {
        assert_eq!(SimTime::from_nanos(18).to_string(), "18.000ns");
        assert_eq!(SimTime::from_secs(3).to_string(), "3.000s");
        assert_eq!(Cycles(42).to_string(), "42cy");
    }

    #[test]
    fn cycles_sum_and_math() {
        let total: Cycles = [Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(total, Cycles(6));
        assert_eq!(Cycles(10).saturating_sub(Cycles(20)), Cycles::ZERO);
        assert_eq!(Cycles(10).max(Cycles(20)), Cycles(20));
    }
}
