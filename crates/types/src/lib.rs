//! Shared foundation types for the GreenDIMM reproduction.
//!
//! Everything that more than one simulator crate needs lives here:
//!
//! * strongly-typed identifiers for the DRAM hierarchy ([`ids`]),
//! * simulated-time newtypes with unit conversions ([`time`]),
//! * the DRAM organization and timing configuration ([`config`]),
//! * shared error types ([`error`]),
//! * deterministic RNG construction ([`rng`]),
//! * small streaming-statistics helpers ([`stats`]),
//! * fleet-scale configuration and VM accounting ([`fleet`]).
//!
//! # Example
//!
//! ```
//! use gd_types::config::DramConfig;
//!
//! // The paper's SPEC evaluation platform: eight 4Gb 2R x8 DDR4-2133 8GB
//! // DIMMs across four channels (64 GB total).
//! let cfg = DramConfig::ddr4_2133_64gb();
//! assert_eq!(cfg.total_capacity_bytes(), 64 << 30);
//! assert_eq!(cfg.org.subarray_groups(), 64);
//! // A sub-array group is always 1/64 = 1.5625% of capacity.
//! assert_eq!(cfg.subarray_group_bytes() * 64, cfg.total_capacity_bytes());
//! ```

pub mod config;
pub mod error;
pub mod fleet;
pub mod ids;
pub mod rng;
pub mod stats;
pub mod time;

pub use config::{DramConfig, DramOrg, DramTiming, MemSpecKind, RefreshScheme, PASR_SEGMENTS};
pub use error::{GdError, Result};
pub use fleet::{FleetConfig, FleetPlacement, FleetStats};
pub use ids::{Bank, BankGroup, Channel, Rank, Row, SubArray, SubArrayGroup};
pub use time::{Cycles, SimTime};
