//! DRAM organization and timing configuration.
//!
//! The presets mirror the paper's two evaluation platforms:
//!
//! * [`DramConfig::ddr4_2133_64gb`] — eight 4Gb 2R×8 DDR4-2133 8GB DIMMs on
//!   four channels (two slots each): 16 ranks, 64 GB. Used for the SPEC and
//!   data-center workload experiments.
//! * [`DramConfig::ddr4_2133_256gb`] — eight 8Gb 2R×4 32GB DIMMs: 16 ranks,
//!   256 GB. Used for the Azure VM-trace experiments.

use crate::error::{GdError, Result};

/// Physical organization of the DRAM system.
///
/// Capacities are derived, never stored, so the organization can not get out
/// of sync with itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramOrg {
    /// Number of independent memory channels.
    pub channels: u32,
    /// Ranks per channel (DIMMs × ranks-per-DIMM).
    pub ranks_per_channel: u32,
    /// DDR4 bank groups per rank.
    pub bank_groups: u32,
    /// Banks per bank group.
    pub banks_per_group: u32,
    /// Sub-arrays per bank (the paper's DDR4 ×8 4Gb part has 64).
    pub subarrays_per_bank: u32,
    /// Rows per sub-array (512 for the 4Gb ×8 part: 15 row bits, 6 of which
    /// select the sub-array).
    pub rows_per_subarray: u32,
    /// Column positions per row (device columns).
    pub columns: u32,
    /// Device data width in bits (×4, ×8, or ×16).
    pub device_width: u32,
    /// DRAM devices per rank providing the 64-bit data bus
    /// (`64 / device_width`).
    pub devices_per_rank: u32,
}

impl DramOrg {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`GdError::InvalidConfig`] if any field is zero, the device
    /// widths do not fill a 64-bit bus, or a dimension is not a power of two
    /// (the address mapper requires power-of-two dimensions).
    pub fn validate(&self) -> Result<()> {
        let dims = [
            ("channels", self.channels),
            ("ranks_per_channel", self.ranks_per_channel),
            ("bank_groups", self.bank_groups),
            ("banks_per_group", self.banks_per_group),
            ("subarrays_per_bank", self.subarrays_per_bank),
            ("rows_per_subarray", self.rows_per_subarray),
            ("columns", self.columns),
            ("device_width", self.device_width),
            ("devices_per_rank", self.devices_per_rank),
        ];
        for (name, v) in dims {
            if v == 0 {
                return Err(GdError::InvalidConfig(format!("{name} must be non-zero")));
            }
            if !v.is_power_of_two() {
                return Err(GdError::InvalidConfig(format!(
                    "{name} must be a power of two, got {v}"
                )));
            }
        }
        if self.device_width * self.devices_per_rank != 64 {
            return Err(GdError::InvalidConfig(format!(
                "device_width ({}) x devices_per_rank ({}) must equal 64",
                self.device_width, self.devices_per_rank
            )));
        }
        Ok(())
    }

    /// Banks per rank (bank groups × banks per group).
    pub fn banks_per_rank(&self) -> u32 {
        self.bank_groups * self.banks_per_group
    }

    /// Total ranks in the system.
    pub fn total_ranks(&self) -> u32 {
        self.channels * self.ranks_per_channel
    }

    /// Total banks in the system.
    pub fn total_banks(&self) -> u32 {
        self.total_ranks() * self.banks_per_rank()
    }

    /// Rows per bank (sub-arrays × rows per sub-array).
    pub fn rows_per_bank(&self) -> u32 {
        self.subarrays_per_bank * self.rows_per_subarray
    }

    /// Bytes in one device row (columns × device width / 8).
    pub fn device_row_bytes(&self) -> u64 {
        self.columns as u64 * self.device_width as u64 / 8
    }

    /// Bytes in one rank-level row (device row × devices per rank), i.e. the
    /// amount of data addressed by one (bank, row) pair across the rank.
    pub fn rank_row_bytes(&self) -> u64 {
        self.device_row_bytes() * self.devices_per_rank as u64
    }

    /// Capacity of one rank in bytes.
    pub fn rank_bytes(&self) -> u64 {
        self.rank_row_bytes() * self.rows_per_bank() as u64 * self.banks_per_rank() as u64
    }

    /// Capacity of one DRAM device in bits.
    pub fn device_bits(&self) -> u64 {
        self.device_row_bytes() * 8 * self.rows_per_bank() as u64 * self.banks_per_rank() as u64
    }

    /// Total system capacity in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.rank_bytes() * self.total_ranks() as u64
    }

    /// Number of sub-array groups, which always equals the sub-arrays per
    /// bank (a group spans every channel, rank, and bank).
    pub fn subarray_groups(&self) -> u32 {
        self.subarrays_per_bank
    }

    /// Capacity of one sub-array group: `total / subarray_groups`.
    /// Always 1/64 = 1.5625 % of capacity with 64 sub-arrays per bank.
    pub fn subarray_group_bytes(&self) -> u64 {
        self.total_bytes() / self.subarray_groups() as u64
    }

    /// Capacity of one sub-array within one bank of one rank, across the
    /// devices of that rank (the paper's "4MB across 8 DRAM devices").
    pub fn rank_subarray_bytes(&self) -> u64 {
        self.rank_row_bytes() * self.rows_per_subarray as u64
    }
}

/// DDR4 timing parameters, in memory-clock cycles unless suffixed `_ns`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramTiming {
    /// Memory clock frequency in MHz (data rate is twice this).
    pub clock_mhz: f64,
    /// CAS latency (READ to data).
    pub cl: u64,
    /// RAS-to-CAS delay (ACT to READ/WRITE).
    pub t_rcd: u64,
    /// Row precharge time (PRE to ACT).
    pub t_rp: u64,
    /// Row active time (ACT to PRE minimum).
    pub t_ras: u64,
    /// Row cycle time (ACT to ACT, same bank).
    pub t_rc: u64,
    /// ACT-to-ACT, different bank group.
    pub t_rrd_s: u64,
    /// ACT-to-ACT, same bank group.
    pub t_rrd_l: u64,
    /// Four-activate window.
    pub t_faw: u64,
    /// CAS-to-CAS, different bank group.
    pub t_ccd_s: u64,
    /// CAS-to-CAS, same bank group.
    pub t_ccd_l: u64,
    /// Write recovery time (end of write data to PRE).
    pub t_wr: u64,
    /// Write-to-read, different bank group.
    pub t_wtr_s: u64,
    /// Write-to-read, same bank group.
    pub t_wtr_l: u64,
    /// Read-to-precharge.
    pub t_rtp: u64,
    /// CAS write latency.
    pub cwl: u64,
    /// Refresh cycle time (REF command duration).
    pub t_rfc: u64,
    /// Same-bank refresh cycle time (DDR5 REFsb duration). Equal to
    /// [`t_rfc`](Self::t_rfc) on generations without same-bank refresh.
    pub t_rfc_sb: u64,
    /// Average refresh interval.
    pub t_refi: u64,
    /// Minimum CKE low pulse (power-down minimum residency).
    pub t_cke: u64,
    /// Power-down exit latency, cycles.
    pub t_xp: u64,
    /// Self-refresh exit latency, cycles.
    pub t_xs: u64,
    /// Burst length (8 for DDR4).
    pub burst_length: u64,
    /// Rank power-down entry/exit pair latency quoted by the paper (18 ns).
    pub power_down_exit_ns: f64,
    /// Self-refresh exit latency quoted by the paper (768 ns).
    pub self_refresh_exit_ns: f64,
    /// Exit latency of GreenDIMM's sub-array deep power-down state. The DLL
    /// stays on, so this is no longer than power-down exit (18 ns).
    pub deep_power_down_exit_ns: f64,
}

impl DramTiming {
    /// DDR4-2133 (15-15-15) timing for a 4Gb device.
    pub fn ddr4_2133_4gb() -> Self {
        DramTiming {
            clock_mhz: 1_066.666_666_666_666_7,
            cl: 15,
            t_rcd: 15,
            t_rp: 15,
            t_ras: 36,
            t_rc: 51,
            t_rrd_s: 4,
            t_rrd_l: 6,
            t_faw: 26,
            t_ccd_s: 4,
            t_ccd_l: 6,
            t_wr: 16,
            t_wtr_s: 3,
            t_wtr_l: 9,
            t_rtp: 8,
            cwl: 11,
            t_rfc: 278,    // 260 ns for 4Gb parts
            t_rfc_sb: 278, // DDR4 has no same-bank refresh; kept equal to tRFC
            t_refi: 8320,  // 7.8 us
            t_cke: 6,
            t_xp: 7,
            t_xs: 289, // tRFC + 10 ns
            burst_length: 8,
            power_down_exit_ns: 18.0,
            self_refresh_exit_ns: 768.0,
            deep_power_down_exit_ns: 18.0,
        }
    }

    /// DDR4-2133 timing for an 8Gb device (longer tRFC).
    pub fn ddr4_2133_8gb() -> Self {
        DramTiming {
            t_rfc: 374, // 350 ns for 8Gb parts
            t_rfc_sb: 374,
            t_xs: 385,
            ..Self::ddr4_2133_4gb()
        }
    }

    /// DDR5-4800B (40-39-39) timing for a 16Gb device, in 2400 MHz memory
    /// clocks (tCK = 0.4167 ns). Sources: JEDEC JESD79-5 speed-bin tables
    /// (tAA/tRCD/tRP 16.66/16.25/16.25 ns, tRAS 32 ns, tRFC1 295 ns,
    /// tRFCsb 130 ns, tREFI1 3.9 us).
    pub fn ddr5_4800() -> Self {
        DramTiming {
            clock_mhz: 2_400.0,
            cl: 40,
            t_rcd: 39,
            t_rp: 39,
            t_ras: 77,
            t_rc: 116,
            t_rrd_s: 8,
            t_rrd_l: 12,
            t_faw: 32,
            t_ccd_s: 8,
            t_ccd_l: 12,
            t_wr: 72,
            t_wtr_s: 16,
            t_wtr_l: 24,
            t_rtp: 18,
            cwl: 38,
            t_rfc: 708,    // tRFC1 = 295 ns for 16Gb parts
            t_rfc_sb: 312, // tRFCsb = 130 ns: the same-bank refresh win
            t_refi: 9360,  // tREFI1 = 3.9 us
            t_cke: 8,
            t_xp: 18,
            t_xs: 732, // tRFC1 + 10 ns
            burst_length: 16,
            power_down_exit_ns: 7.5,
            self_refresh_exit_ns: 305.0,
            // GreenDIMM's MRS-programmed sub-array exit is a DLL-on state;
            // the paper's 18 ns figure is device-internal and carries over.
            deep_power_down_exit_ns: 18.0,
        }
    }

    /// LPDDR4-3200 (28-29-34) timing for an 8Gb die, in 1600 MHz memory
    /// clocks (tCK = 0.625 ns). Sources: JEDEC JESD209-4 core timings
    /// (tRCD 18 ns, tRPpb 21 ns, tRAS 42 ns, tRFCab 380 ns,
    /// tREFI 3.9 us). No bank groups, no same-bank refresh; PASR masks
    /// self-refresh per segment instead.
    pub fn lpddr4_3200() -> Self {
        DramTiming {
            clock_mhz: 1_600.0,
            cl: 28,
            t_rcd: 29,
            t_rp: 34,
            t_ras: 68,
            t_rc: 102,
            t_rrd_s: 10,
            t_rrd_l: 10,
            t_faw: 64,
            t_ccd_s: 8,
            t_ccd_l: 8,
            t_wr: 29,
            t_wtr_s: 16,
            t_wtr_l: 16,
            t_rtp: 12,
            cwl: 14,
            t_rfc: 608, // tRFCab = 380 ns for 8Gb dies
            t_rfc_sb: 608,
            t_refi: 6240, // 3.9 us
            t_cke: 12,
            t_xp: 12,
            t_xs: 619, // tRFCab + ~7 ns (tXSR)
            burst_length: 16,
            power_down_exit_ns: 7.5,
            self_refresh_exit_ns: 500.0,
            deep_power_down_exit_ns: 18.0,
        }
    }

    /// Clock period in nanoseconds.
    pub fn t_ck_ns(&self) -> f64 {
        1e3 / self.clock_mhz
    }

    /// Data-bus transfer time of one 64-byte cache line (BL/2 clock cycles).
    pub fn burst_cycles(&self) -> u64 {
        self.burst_length / 2
    }

    /// Default epoch length for steady-state phase detection (the
    /// epoch-replay engine): four refresh intervals. A multiple of tREFI
    /// keeps the per-epoch refresh count stable, so a steady bandwidth
    /// phase produces identical epoch signatures instead of aliasing
    /// against the refresh schedule.
    pub fn steady_epoch_cycles(&self) -> u64 {
        self.t_refi * 4
    }

    /// [`burst_cycles`](Self::burst_cycles) as a typed count, for
    /// unit-safe conversion to seconds or energy.
    pub fn burst(&self) -> crate::time::Cycles {
        crate::time::Cycles::new(self.burst_cycles())
    }

    /// Validates ordering constraints between parameters.
    ///
    /// # Errors
    ///
    /// Returns [`GdError::InvalidConfig`] if e.g. `t_rc < t_ras + t_rp`.
    pub fn validate(&self) -> Result<()> {
        if self.clock_mhz <= 0.0 {
            return Err(GdError::InvalidConfig("clock_mhz must be positive".into()));
        }
        if self.t_rc < self.t_ras + self.t_rp {
            return Err(GdError::InvalidConfig(format!(
                "t_rc ({}) must be >= t_ras + t_rp ({})",
                self.t_rc,
                self.t_ras + self.t_rp
            )));
        }
        if self.t_rrd_l < self.t_rrd_s || self.t_ccd_l < self.t_ccd_s {
            return Err(GdError::InvalidConfig(
                "same-bank-group constraints must be >= different-bank-group".into(),
            ));
        }
        if self.burst_length == 0 || !self.burst_length.is_multiple_of(2) {
            return Err(GdError::InvalidConfig(
                "burst_length must be a positive even number".into(),
            ));
        }
        Ok(())
    }
}

/// How physical addresses are spread across the DRAM hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InterleaveMode {
    /// Channel/rank/bank interleaving using low-order cache-line-granularity
    /// address bits (the commodity-server default the paper evaluates).
    #[default]
    Interleaved,
    /// Interleaved, additionally XOR-hashing bank bits with row bits to
    /// spread row-buffer conflicts (permutation-based interleaving).
    InterleavedXor,
    /// No interleaving: consecutive physical addresses fill an entire rank
    /// before moving to the next (the paper's "w/o interleaving" baseline).
    Linear,
}

impl InterleaveMode {
    /// True for either interleaved variant.
    pub fn is_interleaved(self) -> bool {
        !matches!(self, InterleaveMode::Linear)
    }
}

/// Memory generation the configuration models. Selects the refresh scheme,
/// the protocol legality table, and the IDD power backend (`gd-power`'s
/// `MemSpec` implementations); timing and organization numbers live in the
/// presets below.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemSpecKind {
    /// DDR4: all-bank refresh, single-rail IDD power model (the paper's
    /// evaluation platform and the bit-identical default).
    #[default]
    Ddr4,
    /// DDR5: 32 banks in 8 bank groups, same-bank refresh (REFsb) rotating
    /// one bank per group at a time, split VDD/VDDQ core + interface power.
    Ddr5,
    /// LPDDR4-style device with partial-array self-refresh: masked
    /// self-refresh at segment granularity, IDD6 scaling with the unmasked
    /// footprint.
    Lpddr4Pasr,
}

impl MemSpecKind {
    /// Stable lowercase name, used by `--memspec` and provenance lines.
    pub fn name(self) -> &'static str {
        match self {
            MemSpecKind::Ddr4 => "ddr4",
            MemSpecKind::Ddr5 => "ddr5",
            MemSpecKind::Lpddr4Pasr => "lpddr4-pasr",
        }
    }

    /// Parses a `--memspec` argument. Accepts the canonical names plus the
    /// `lpddr4` / `pasr` shorthands.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ddr4" => Some(MemSpecKind::Ddr4),
            "ddr5" => Some(MemSpecKind::Ddr5),
            "lpddr4-pasr" | "lpddr4" | "pasr" => Some(MemSpecKind::Lpddr4Pasr),
            _ => None,
        }
    }

    /// Every backend, in fixed (provenance-stable) order.
    pub fn all() -> [MemSpecKind; 3] {
        [
            MemSpecKind::Ddr4,
            MemSpecKind::Ddr5,
            MemSpecKind::Lpddr4Pasr,
        ]
    }
}

impl std::fmt::Display for MemSpecKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How the device retires its refresh obligation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshScheme {
    /// One REF command refreshes every bank of the rank (DDR4, LPDDR4
    /// all-bank refresh); the whole rank stalls for tRFC.
    AllBank,
    /// DDR5 same-bank refresh: each REFsb refreshes one bank per bank group
    /// (one "set"), stalling only those banks for tRFCsb. `sets` equals the
    /// banks per group; a REFsb is due every tREFI / sets, rotating sets.
    SameBank {
        /// Number of refresh sets (= banks per bank group).
        sets: u32,
    },
}

/// Number of PASR segments per rank on the LPDDR4 backend (JESD209-4
/// MR17 masks eight equal row segments).
pub const PASR_SEGMENTS: u32 = 8;

/// Complete DRAM system configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Physical organization.
    pub org: DramOrg,
    /// Timing parameters.
    pub timing: DramTiming,
    /// Address interleaving mode.
    pub interleave: InterleaveMode,
    /// Memory generation (refresh scheme + power backend selector).
    pub kind: MemSpecKind,
}

impl DramConfig {
    /// The paper's 64 GB SPEC platform: 4 channels × 4 ranks of eight 4Gb
    /// ×8 devices (16 banks × 64 sub-arrays × 512 rows × 1024 columns).
    pub fn ddr4_2133_64gb() -> Self {
        DramConfig {
            org: DramOrg {
                channels: 4,
                ranks_per_channel: 4,
                bank_groups: 4,
                banks_per_group: 4,
                subarrays_per_bank: 64,
                rows_per_subarray: 512,
                columns: 1024,
                device_width: 8,
                devices_per_rank: 8,
            },
            timing: DramTiming::ddr4_2133_4gb(),
            interleave: InterleaveMode::Interleaved,
            kind: MemSpecKind::Ddr4,
        }
    }

    /// The paper's 256 GB VM-trace platform: 4 channels × 4 ranks of
    /// sixteen 8Gb ×4 devices.
    pub fn ddr4_2133_256gb() -> Self {
        DramConfig {
            org: DramOrg {
                channels: 4,
                ranks_per_channel: 4,
                bank_groups: 4,
                banks_per_group: 4,
                subarrays_per_bank: 64,
                rows_per_subarray: 2048,
                columns: 1024,
                device_width: 4,
                devices_per_rank: 16,
            },
            timing: DramTiming::ddr4_2133_8gb(),
            interleave: InterleaveMode::Interleaved,
            kind: MemSpecKind::Ddr4,
        }
    }

    /// DDR5-4800 analog of the 64 GB platform: same channel/rank topology,
    /// 32 banks per rank in 8 bank groups (same-bank refresh rotates
    /// 4 sets of 8 banks). Row space is redistributed (more banks, shorter
    /// sub-arrays) so capacity stays 64 GB.
    pub fn ddr5_4800_64gb() -> Self {
        DramConfig {
            org: DramOrg {
                channels: 4,
                ranks_per_channel: 4,
                bank_groups: 8,
                banks_per_group: 4,
                subarrays_per_bank: 64,
                rows_per_subarray: 256,
                columns: 1024,
                device_width: 8,
                devices_per_rank: 8,
            },
            timing: DramTiming::ddr5_4800(),
            interleave: InterleaveMode::Interleaved,
            kind: MemSpecKind::Ddr5,
        }
    }

    /// DDR5-4800 analog of the 256 GB VM-trace platform (16Gb ×4 devices).
    pub fn ddr5_4800_256gb() -> Self {
        DramConfig {
            org: DramOrg {
                channels: 4,
                ranks_per_channel: 4,
                bank_groups: 8,
                banks_per_group: 4,
                subarrays_per_bank: 64,
                rows_per_subarray: 1024,
                columns: 1024,
                device_width: 4,
                devices_per_rank: 16,
            },
            timing: DramTiming::ddr5_4800(),
            interleave: InterleaveMode::Interleaved,
            kind: MemSpecKind::Ddr5,
        }
    }

    /// LPDDR4-3200 analog of the 64 GB platform: 8 ungrouped banks of
    /// ×16 dies, four dies per 64-bit rank, PASR masking in 8 segments.
    pub fn lpddr4_3200_64gb() -> Self {
        DramConfig {
            org: DramOrg {
                channels: 4,
                ranks_per_channel: 4,
                bank_groups: 1,
                banks_per_group: 8,
                subarrays_per_bank: 64,
                rows_per_subarray: 1024,
                columns: 1024,
                device_width: 16,
                devices_per_rank: 4,
            },
            timing: DramTiming::lpddr4_3200(),
            interleave: InterleaveMode::Interleaved,
            kind: MemSpecKind::Lpddr4Pasr,
        }
    }

    /// LPDDR4-3200 analog of the 256 GB VM-trace platform.
    pub fn lpddr4_3200_256gb() -> Self {
        DramConfig {
            org: DramOrg {
                channels: 4,
                ranks_per_channel: 4,
                bank_groups: 1,
                banks_per_group: 8,
                subarrays_per_bank: 64,
                rows_per_subarray: 4096,
                columns: 1024,
                device_width: 16,
                devices_per_rank: 4,
            },
            timing: DramTiming::lpddr4_3200(),
            interleave: InterleaveMode::Interleaved,
            kind: MemSpecKind::Lpddr4Pasr,
        }
    }

    /// The paper-platform preset for a backend at 64 GB (fig09/10/15).
    pub fn preset_64gb(kind: MemSpecKind) -> Self {
        match kind {
            MemSpecKind::Ddr4 => Self::ddr4_2133_64gb(),
            MemSpecKind::Ddr5 => Self::ddr5_4800_64gb(),
            MemSpecKind::Lpddr4Pasr => Self::lpddr4_3200_64gb(),
        }
    }

    /// The paper-platform preset for a backend at 256 GB (fig02/13).
    pub fn preset_256gb(kind: MemSpecKind) -> Self {
        match kind {
            MemSpecKind::Ddr4 => Self::ddr4_2133_256gb(),
            MemSpecKind::Ddr5 => Self::ddr5_4800_256gb(),
            MemSpecKind::Lpddr4Pasr => Self::lpddr4_3200_256gb(),
        }
    }

    /// A deliberately small configuration for fast unit tests: 2 channels ×
    /// 2 ranks, 8 banks, 8 sub-arrays, 16 MB total.
    pub fn small_test() -> Self {
        DramConfig {
            org: DramOrg {
                channels: 2,
                ranks_per_channel: 2,
                bank_groups: 2,
                banks_per_group: 4,
                subarrays_per_bank: 8,
                rows_per_subarray: 64,
                columns: 128,
                device_width: 8,
                devices_per_rank: 8,
            },
            timing: DramTiming::ddr4_2133_4gb(),
            interleave: InterleaveMode::Interleaved,
            kind: MemSpecKind::Ddr4,
        }
    }

    /// DDR5 variant of [`small_test`](Self::small_test): same 16 MB
    /// capacity, 8 banks in 4 groups so same-bank refresh rotates 2 sets.
    pub fn small_test_ddr5() -> Self {
        DramConfig {
            org: DramOrg {
                bank_groups: 4,
                banks_per_group: 2,
                ..Self::small_test().org
            },
            timing: DramTiming::ddr5_4800(),
            interleave: InterleaveMode::Interleaved,
            kind: MemSpecKind::Ddr5,
        }
    }

    /// LPDDR4-PASR variant of [`small_test`](Self::small_test): same 16 MB
    /// capacity, 8 ungrouped banks of ×16 dies.
    pub fn small_test_lpddr4() -> Self {
        DramConfig {
            org: DramOrg {
                bank_groups: 1,
                banks_per_group: 8,
                device_width: 16,
                devices_per_rank: 4,
                ..Self::small_test().org
            },
            timing: DramTiming::lpddr4_3200(),
            interleave: InterleaveMode::Interleaved,
            kind: MemSpecKind::Lpddr4Pasr,
        }
    }

    /// The small-test preset for a backend (engine-equivalence matrices).
    pub fn small_test_for(kind: MemSpecKind) -> Self {
        match kind {
            MemSpecKind::Ddr4 => Self::small_test(),
            MemSpecKind::Ddr5 => Self::small_test_ddr5(),
            MemSpecKind::Lpddr4Pasr => Self::small_test_lpddr4(),
        }
    }

    /// Refresh scheme implied by the memory generation and organization.
    pub fn refresh_scheme(&self) -> RefreshScheme {
        match self.kind {
            MemSpecKind::Ddr5 => RefreshScheme::SameBank {
                sets: self.org.banks_per_group,
            },
            MemSpecKind::Ddr4 | MemSpecKind::Lpddr4Pasr => RefreshScheme::AllBank,
        }
    }

    /// Rows per PASR segment (only meaningful on the LPDDR4-PASR backend;
    /// the mask covers [`PASR_SEGMENTS`] equal row slices of every bank).
    pub fn rows_per_pasr_segment(&self) -> u32 {
        self.org.rows_per_bank() / PASR_SEGMENTS
    }

    /// Validates organization, timing, and generation-specific constraints
    /// together.
    ///
    /// # Errors
    ///
    /// Propagates [`GdError::InvalidConfig`] from either part, and rejects
    /// generation/organization mismatches (a DDR5 config whose tRFCsb
    /// exceeds tRFC, an LPDDR4-PASR config whose banks do not split into
    /// [`PASR_SEGMENTS`] segments).
    pub fn validate(&self) -> Result<()> {
        self.org.validate()?;
        self.timing.validate()?;
        match self.kind {
            MemSpecKind::Ddr4 => {}
            MemSpecKind::Ddr5 => {
                if self.timing.t_rfc_sb == 0 || self.timing.t_rfc_sb > self.timing.t_rfc {
                    return Err(GdError::InvalidConfig(format!(
                        "DDR5 t_rfc_sb ({}) must be in 1..=t_rfc ({})",
                        self.timing.t_rfc_sb, self.timing.t_rfc
                    )));
                }
                let RefreshScheme::SameBank { sets } = self.refresh_scheme() else {
                    unreachable!("DDR5 kind always yields the same-bank scheme");
                };
                if self.timing.t_refi / sets as u64 == 0 {
                    return Err(GdError::InvalidConfig(format!(
                        "t_refi ({}) too short for {sets} same-bank refresh sets",
                        self.timing.t_refi
                    )));
                }
            }
            MemSpecKind::Lpddr4Pasr => {
                if !self.org.rows_per_bank().is_multiple_of(PASR_SEGMENTS) {
                    return Err(GdError::InvalidConfig(format!(
                        "rows_per_bank ({}) must split into {PASR_SEGMENTS} PASR segments",
                        self.org.rows_per_bank()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Total capacity in bytes.
    pub fn total_capacity_bytes(&self) -> u64 {
        self.org.total_bytes()
    }

    /// Capacity of one sub-array group in bytes.
    pub fn subarray_group_bytes(&self) -> u64 {
        self.org.subarray_group_bytes()
    }

    /// Returns a copy with a different interleave mode.
    pub fn with_interleave(mut self, mode: InterleaveMode) -> Self {
        self.interleave = mode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_64gb_matches_paper() {
        let cfg = DramConfig::ddr4_2133_64gb();
        cfg.validate().unwrap();
        assert_eq!(cfg.total_capacity_bytes(), 64 << 30);
        // 4Gb devices.
        assert_eq!(cfg.org.device_bits(), 4 << 30);
        // A rank of eight x8 devices provides 4 GB with 16 banks.
        assert_eq!(cfg.org.rank_bytes(), 4 << 30);
        assert_eq!(cfg.org.banks_per_rank(), 16);
        // Sub-array: 4Mb per device, 4MB across the rank.
        assert_eq!(cfg.org.rank_subarray_bytes(), 4 << 20);
        // Sub-array group: 4MB x 16 banks x 16 ranks = 1024 MB.
        assert_eq!(cfg.subarray_group_bytes(), 1024 << 20);
        // 1.5625% of total capacity.
        assert!(
            (cfg.subarray_group_bytes() as f64 / cfg.total_capacity_bytes() as f64 - 0.015625)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn preset_256gb_matches_paper() {
        let cfg = DramConfig::ddr4_2133_256gb();
        cfg.validate().unwrap();
        assert_eq!(cfg.total_capacity_bytes(), 256 << 30);
        assert_eq!(cfg.org.device_bits(), 8 << 30);
        assert_eq!(cfg.org.rank_bytes(), 16 << 30);
        // Sub-array group fraction stays 1/64 regardless of capacity.
        assert_eq!(cfg.subarray_group_bytes() * 64, cfg.total_capacity_bytes());
    }

    #[test]
    fn small_test_is_valid_and_small() {
        let cfg = DramConfig::small_test();
        cfg.validate().unwrap();
        assert_eq!(cfg.total_capacity_bytes(), 16 << 20);
    }

    #[test]
    fn invalid_width_rejected() {
        let mut cfg = DramConfig::small_test();
        cfg.org.device_width = 16; // 16 x 8 devices = 128-bit bus: invalid
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn non_power_of_two_rejected() {
        let mut cfg = DramConfig::small_test();
        cfg.org.channels = 3;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn timing_validation_catches_trc() {
        let mut t = DramTiming::ddr4_2133_4gb();
        t.t_rc = 10;
        assert!(t.validate().is_err());
    }

    #[test]
    fn timing_clock_period() {
        let t = DramTiming::ddr4_2133_4gb();
        assert!((t.t_ck_ns() - 0.9375).abs() < 1e-9);
        assert_eq!(t.burst_cycles(), 4);
    }

    #[test]
    fn interleave_mode_helpers() {
        assert!(InterleaveMode::Interleaved.is_interleaved());
        assert!(InterleaveMode::InterleavedXor.is_interleaved());
        assert!(!InterleaveMode::Linear.is_interleaved());
    }

    #[test]
    fn ddr5_presets_match_capacity_and_banks() {
        for (cfg, bytes) in [
            (DramConfig::ddr5_4800_64gb(), 64u64 << 30),
            (DramConfig::ddr5_4800_256gb(), 256 << 30),
        ] {
            cfg.validate().unwrap();
            assert_eq!(cfg.total_capacity_bytes(), bytes);
            assert_eq!(cfg.org.banks_per_rank(), 32);
            assert_eq!(cfg.org.bank_groups, 8);
            assert_eq!(cfg.refresh_scheme(), RefreshScheme::SameBank { sets: 4 });
        }
    }

    #[test]
    fn lpddr4_presets_match_capacity_and_segments() {
        for (cfg, bytes) in [
            (DramConfig::lpddr4_3200_64gb(), 64u64 << 30),
            (DramConfig::lpddr4_3200_256gb(), 256 << 30),
        ] {
            cfg.validate().unwrap();
            assert_eq!(cfg.total_capacity_bytes(), bytes);
            assert_eq!(cfg.org.banks_per_rank(), 8);
            assert_eq!(cfg.refresh_scheme(), RefreshScheme::AllBank);
            assert_eq!(
                cfg.rows_per_pasr_segment() * PASR_SEGMENTS,
                cfg.org.rows_per_bank()
            );
        }
    }

    #[test]
    fn small_test_variants_share_capacity() {
        for kind in MemSpecKind::all() {
            let cfg = DramConfig::small_test_for(kind);
            cfg.validate().unwrap();
            assert_eq!(cfg.total_capacity_bytes(), 16 << 20, "{kind}");
            assert_eq!(cfg.kind, kind);
        }
    }

    #[test]
    fn memspec_kind_parse_round_trips() {
        for kind in MemSpecKind::all() {
            assert_eq!(MemSpecKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(MemSpecKind::parse("pasr"), Some(MemSpecKind::Lpddr4Pasr));
        assert_eq!(MemSpecKind::parse("lpddr4"), Some(MemSpecKind::Lpddr4Pasr));
        assert_eq!(MemSpecKind::parse("hbm3"), None);
    }

    #[test]
    fn ddr5_rfc_sb_ordering_enforced() {
        let mut cfg = DramConfig::small_test_ddr5();
        cfg.timing.t_rfc_sb = cfg.timing.t_rfc + 1;
        assert!(cfg.validate().is_err());
        cfg.timing.t_rfc_sb = 0;
        assert!(cfg.validate().is_err());
    }
}
