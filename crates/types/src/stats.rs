//! Small statistics helpers used by the simulators and the bench harness.

/// A streaming accumulator for mean/min/max/count of an `f64` series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Summary::new()
    }
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Minimum, or `None` if empty or the accumulator carries no bounds
    /// (a [`Self::delta_since`] snapshot difference).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0 && self.min <= self.max).then_some(self.min)
    }

    /// Maximum, or `None` if empty or the accumulator carries no bounds.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0 && self.min <= self.max).then_some(self.max)
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &Summary) {
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Count/sum difference `self − earlier` between two snapshots of the
    /// same accumulator. Min/max are not recoverable from cumulative
    /// snapshots, so the delta carries empty bounds and
    /// [`Self::merge_scaled`] leaves the target's bounds untouched when
    /// merging such a delta.
    pub fn delta_since(&self, earlier: &Summary) -> Summary {
        Summary {
            count: self.count - earlier.count,
            sum: self.sum - earlier.sum,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Merges `times` copies of `other` — used to scale a
    /// representative-epoch delta across fast-forwarded repeats. Bounds are
    /// merged once (they do not scale) and only when `other` carries any.
    pub fn merge_scaled(&mut self, other: &Summary, times: u64) {
        self.count += other.count * times;
        self.sum += other.sum * times as f64;
        if times > 0 && other.count > 0 && other.min <= other.max {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

/// Computes the p-th percentile (0–100) of a sample set by linear
/// interpolation between closest ranks. Returns `None` for an empty slice.
///
/// Used for the tail-latency (p95/p99) checks on the latency-critical
/// CloudSuite-style workloads.
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = rank - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Geometric mean of a slice. Returns `None` if empty or any element is
/// non-positive. Used to aggregate normalized energy across benchmarks.
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| *v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), None);
        s.record(1.0);
        s.record(3.0);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), Some(2.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(3.0));
    }

    #[test]
    fn summary_merge_and_collect() {
        let a: Summary = [1.0, 2.0].into_iter().collect();
        let mut b: Summary = [10.0].into_iter().collect();
        b.merge(&a);
        assert_eq!(b.count(), 3);
        assert_eq!(b.max(), Some(10.0));
        assert_eq!(b.min(), Some(1.0));
    }

    #[test]
    fn merge_with_empty_keeps_bounds() {
        let mut a: Summary = [5.0].into_iter().collect();
        a.merge(&Summary::new());
        assert_eq!(a.min(), Some(5.0));
        assert_eq!(a.max(), Some(5.0));
    }

    #[test]
    fn delta_and_scaled_merge() {
        let earlier: Summary = [10.0, 20.0].into_iter().collect();
        let mut later = earlier;
        later.record(30.0);
        later.record(50.0);
        let delta = later.delta_since(&earlier);
        assert_eq!(delta.count(), 2);
        assert_eq!(delta.sum(), 80.0);
        assert_eq!(delta.min(), None, "delta carries no bounds");
        // Scaling the delta three times onto a live accumulator adds the
        // count/sum contributions without disturbing min/max.
        let mut acc: Summary = [1.0, 99.0].into_iter().collect();
        acc.merge_scaled(&delta, 3);
        assert_eq!(acc.count(), 2 + 6);
        assert_eq!(acc.sum(), 100.0 + 240.0);
        assert_eq!(acc.min(), Some(1.0));
        assert_eq!(acc.max(), Some(99.0));
        // Scaling by zero is a no-op.
        acc.merge_scaled(&delta, 0);
        assert_eq!(acc.count(), 8);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(4.0));
        assert_eq!(percentile(&v, 50.0), Some(2.5));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn percentile_p99_of_uniform() {
        let v: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let p99 = percentile(&v, 99.0).unwrap();
        assert!((p99 - 989.01).abs() < 0.1);
    }

    #[test]
    fn geomean_values() {
        assert_eq!(geomean(&[4.0, 1.0]), Some(2.0));
        assert_eq!(geomean(&[]), None);
        assert_eq!(geomean(&[1.0, -1.0]), None);
    }
}
